//! Disaggregated object store (S3-style) with DSCS-aware placement.
//!
//! The baseline system keeps serverless inputs/outputs in a replicated
//! key-value object store spread over storage nodes. DSCS-Serverless maps one
//! replica of objects belonging to acceleratable functions onto DSCS-Drives so
//! the in-storage DSA can reach the data over the P2P path (Section 5.2).
//!
//! The store tracks object metadata only (sizes and placement); latency always
//! comes from the drive/network models.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use dscs_simcore::quantity::Bytes;
use dscs_simcore::rng::DeterministicRng;

/// Identifier of a storage node in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StorageNodeId(pub u32);

/// The kind of drive a storage node exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DriveClass {
    /// Conventional SSD.
    Conventional,
    /// DSCS-Drive (SSD + in-storage DSA).
    Dscs,
}

/// Metadata for one stored object.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectMeta {
    /// Object key.
    pub key: String,
    /// Object size.
    pub size: Bytes,
    /// Nodes holding a replica (primary first).
    pub replicas: Vec<StorageNodeId>,
    /// Whether the object is flagged as input to an acceleratable function.
    pub acceleratable: bool,
}

/// Errors returned by the object store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The requested key does not exist.
    NotFound(String),
    /// The store has no nodes of the class required for placement.
    NoNodesOfClass(DriveClass),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::NotFound(key) => write!(f, "object not found: {key}"),
            StoreError::NoNodesOfClass(class) => write!(f, "no storage nodes of class {class:?}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// The disaggregated object store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectStore {
    nodes: HashMap<StorageNodeId, DriveClass>,
    objects: HashMap<String, ObjectMeta>,
    replication: usize,
    /// Chunk size used to split very large objects across drives.
    chunk_size: Bytes,
}

impl ObjectStore {
    /// Creates a store over the given nodes with a replication factor.
    ///
    /// # Panics
    /// Panics if `nodes` is empty or `replication` is zero.
    pub fn new(
        nodes: impl IntoIterator<Item = (StorageNodeId, DriveClass)>,
        replication: usize,
    ) -> Self {
        let nodes: HashMap<_, _> = nodes.into_iter().collect();
        assert!(!nodes.is_empty(), "object store needs at least one node");
        assert!(replication >= 1, "replication factor must be at least 1");
        ObjectStore {
            nodes,
            objects: HashMap::new(),
            replication,
            chunk_size: Bytes::from_mib(64),
        }
    }

    /// A store with `conventional` plain-SSD nodes and `dscs` DSCS-Drive nodes,
    /// 3-way replicated (the common S3-style setup).
    pub fn with_node_counts(conventional: u32, dscs: u32) -> Self {
        assert!(conventional + dscs > 0, "need at least one storage node");
        let mut nodes = Vec::new();
        for i in 0..conventional {
            nodes.push((StorageNodeId(i), DriveClass::Conventional));
        }
        for i in 0..dscs {
            nodes.push((StorageNodeId(conventional + i), DriveClass::Dscs));
        }
        ObjectStore::new(nodes, 3.min((conventional + dscs) as usize))
    }

    /// Number of storage nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of stored objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Drive class of a node.
    pub fn node_class(&self, node: StorageNodeId) -> Option<DriveClass> {
        self.nodes.get(&node).copied()
    }

    /// Stores (or replaces) an object. If `acceleratable` is set and the store
    /// has DSCS nodes, the primary replica is placed on a DSCS-Drive so the
    /// in-storage accelerator can reach the data; otherwise replicas are
    /// spread across random nodes.
    pub fn put(
        &mut self,
        key: impl Into<String>,
        size: Bytes,
        acceleratable: bool,
        rng: &mut DeterministicRng,
    ) -> Result<ObjectMeta, StoreError> {
        let key = key.into();
        let mut replicas = Vec::with_capacity(self.replication);
        if acceleratable {
            let dscs_nodes: Vec<StorageNodeId> = self.nodes_of_class(DriveClass::Dscs);
            if dscs_nodes.is_empty() {
                return Err(StoreError::NoNodesOfClass(DriveClass::Dscs));
            }
            replicas.push(*rng.choose(&dscs_nodes));
        }
        let all: Vec<StorageNodeId> = {
            let mut v: Vec<_> = self.nodes.keys().copied().collect();
            v.sort_unstable();
            v
        };
        while replicas.len() < self.replication.min(all.len()) {
            let candidate = *rng.choose(&all);
            if !replicas.contains(&candidate) {
                replicas.push(candidate);
            }
        }
        let meta = ObjectMeta {
            key: key.clone(),
            size,
            replicas,
            acceleratable,
        };
        self.objects.insert(key, meta.clone());
        Ok(meta)
    }

    /// Looks up an object.
    pub fn get(&self, key: &str) -> Result<&ObjectMeta, StoreError> {
        self.objects
            .get(key)
            .ok_or_else(|| StoreError::NotFound(key.to_string()))
    }

    /// Removes an object, returning its metadata.
    pub fn delete(&mut self, key: &str) -> Result<ObjectMeta, StoreError> {
        self.objects
            .remove(key)
            .ok_or_else(|| StoreError::NotFound(key.to_string()))
    }

    /// Returns the replica (if any) that lives on a DSCS-Drive, which is where
    /// an acceleratable function would be scheduled.
    pub fn dscs_replica(&self, key: &str) -> Result<Option<StorageNodeId>, StoreError> {
        let meta = self.get(key)?;
        Ok(meta
            .replicas
            .iter()
            .copied()
            .find(|n| self.node_class(*n) == Some(DriveClass::Dscs)))
    }

    /// Number of chunks an object is split into (objects under the chunk size —
    /// the common case for serverless payloads, which AWS caps at ~20 MB — stay
    /// on one drive).
    pub fn chunk_count(&self, key: &str) -> Result<u64, StoreError> {
        let meta = self.get(key)?;
        Ok(meta.size.as_u64().div_ceil(self.chunk_size.as_u64()).max(1))
    }

    fn nodes_of_class(&self, class: DriveClass) -> Vec<StorageNodeId> {
        let mut v: Vec<StorageNodeId> = self
            .nodes
            .iter()
            .filter(|(_, c)| **c == class)
            .map(|(id, _)| *id)
            .collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ObjectStore {
        ObjectStore::with_node_counts(6, 2)
    }

    #[test]
    fn acceleratable_objects_land_on_dscs_drives() {
        let mut s = store();
        let mut rng = DeterministicRng::seeded(1);
        let meta = s
            .put("input.jpg", Bytes::from_mib(2), true, &mut rng)
            .expect("put");
        assert_eq!(s.node_class(meta.replicas[0]), Some(DriveClass::Dscs));
        assert!(s.dscs_replica("input.jpg").expect("exists").is_some());
    }

    #[test]
    fn non_acceleratable_objects_do_not_require_dscs_nodes() {
        let mut s = ObjectStore::with_node_counts(4, 0);
        let mut rng = DeterministicRng::seeded(2);
        assert!(s
            .put("log.txt", Bytes::from_kib(10), false, &mut rng)
            .is_ok());
        assert!(matches!(
            s.put("image.jpg", Bytes::from_mib(1), true, &mut rng),
            Err(StoreError::NoNodesOfClass(DriveClass::Dscs))
        ));
    }

    #[test]
    fn replication_uses_distinct_nodes() {
        let mut s = store();
        let mut rng = DeterministicRng::seeded(3);
        let meta = s
            .put("obj", Bytes::from_kib(100), true, &mut rng)
            .expect("put");
        let mut unique = meta.replicas.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), meta.replicas.len());
        assert_eq!(meta.replicas.len(), 3);
    }

    #[test]
    fn get_and_delete_round_trip() {
        let mut s = store();
        let mut rng = DeterministicRng::seeded(4);
        s.put("a", Bytes::from_kib(1), false, &mut rng)
            .expect("put");
        assert_eq!(s.get("a").expect("get").size.as_u64(), 1024);
        assert_eq!(s.object_count(), 1);
        s.delete("a").expect("delete");
        assert!(matches!(s.get("a"), Err(StoreError::NotFound(_))));
        assert_eq!(s.object_count(), 0);
    }

    #[test]
    fn serverless_payloads_fit_one_chunk() {
        let mut s = store();
        let mut rng = DeterministicRng::seeded(5);
        s.put("small", Bytes::from_mib(18), false, &mut rng)
            .expect("put");
        s.put("huge", Bytes::from_gib(1), false, &mut rng)
            .expect("put");
        assert_eq!(s.chunk_count("small").expect("small"), 1);
        assert!(s.chunk_count("huge").expect("huge") > 1);
    }

    #[test]
    fn deterministic_given_same_seed() {
        let mut a = store();
        let mut b = store();
        let mut rng_a = DeterministicRng::seeded(6);
        let mut rng_b = DeterministicRng::seeded(6);
        let ma = a
            .put("x", Bytes::from_mib(1), true, &mut rng_a)
            .expect("put");
        let mb = b
            .put("x", Bytes::from_mib(1), true, &mut rng_b)
            .expect("put");
        assert_eq!(ma.replicas, mb.replicas);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_store_rejected() {
        let _ = ObjectStore::new(Vec::<(StorageNodeId, DriveClass)>::new(), 3);
    }
}
