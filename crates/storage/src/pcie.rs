//! PCIe link model.
//!
//! Three PCIe paths matter in the system: host CPU <-> storage drive, host CPU
//! <-> discrete accelerator (the `cudaMemcpy`-style copy the paper calls out),
//! and the dedicated peer-to-peer path between the flash controller and the DSA
//! inside the DSCS-Drive. Each is a bandwidth-limited transfer plus a fixed
//! per-transaction latency; energy uses the per-bit cost reported for modern
//! SerDes links (the paper cites Zeppelin's numbers).

use serde::{Deserialize, Serialize};

use dscs_simcore::quantity::{Bandwidth, Bytes};
use dscs_simcore::time::SimDuration;

/// PCIe generation (per-lane bandwidth).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PcieGeneration {
    /// PCIe 3.0: ~0.985 GB/s per lane.
    Gen3,
    /// PCIe 4.0: ~1.969 GB/s per lane.
    Gen4,
}

impl PcieGeneration {
    /// Usable bandwidth per lane (after encoding overhead).
    pub fn lane_bandwidth(self) -> Bandwidth {
        match self {
            PcieGeneration::Gen3 => Bandwidth::from_gbps(0.985),
            PcieGeneration::Gen4 => Bandwidth::from_gbps(1.969),
        }
    }
}

/// A PCIe link with a fixed lane count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PcieLink {
    generation: PcieGeneration,
    lanes: u32,
    /// Fixed per-transaction latency (doorbell, DMA descriptor, completion).
    transaction_latency: SimDuration,
    /// Link efficiency after protocol (TLP) overhead.
    efficiency: f64,
}

impl PcieLink {
    /// Creates a link.
    ///
    /// # Panics
    /// Panics if `lanes` is zero or `efficiency` is outside `(0, 1]`.
    pub fn new(
        generation: PcieGeneration,
        lanes: u32,
        transaction_latency: SimDuration,
        efficiency: f64,
    ) -> Self {
        assert!(lanes > 0, "PCIe link needs at least one lane");
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "efficiency must be in (0, 1]"
        );
        PcieLink {
            generation,
            lanes,
            transaction_latency,
            efficiency,
        }
    }

    /// The x4 Gen3 link of a datacenter NVMe drive.
    pub fn nvme_drive() -> Self {
        Self::new(PcieGeneration::Gen3, 4, SimDuration::from_micros(10), 0.90)
    }

    /// The x16 Gen3 link of a discrete GPU/FPGA accelerator card.
    pub fn accelerator_card() -> Self {
        Self::new(PcieGeneration::Gen3, 16, SimDuration::from_micros(10), 0.90)
    }

    /// The internal peer-to-peer path between the flash controller and the DSA
    /// inside the DSCS-Drive (a short x4 Gen3 connection with lower
    /// per-transaction cost because no host round trip is involved).
    pub fn p2p_internal() -> Self {
        Self::new(PcieGeneration::Gen3, 4, SimDuration::from_micros(3), 0.95)
    }

    /// Effective bandwidth of the link.
    pub fn bandwidth(&self) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(
            self.generation.lane_bandwidth().bytes_per_sec()
                * f64::from(self.lanes)
                * self.efficiency,
        )
    }

    /// Latency to move `size` bytes across the link.
    pub fn transfer_latency(&self, size: Bytes) -> SimDuration {
        if size.as_u64() == 0 {
            return SimDuration::ZERO;
        }
        self.transaction_latency + self.bandwidth().transfer_time(size)
    }

    /// Energy to move `size` bytes, using ~6 pJ/bit of SerDes + PHY energy.
    pub fn transfer_energy_joules(&self, size: Bytes) -> f64 {
        const PJ_PER_BIT: f64 = 6.0;
        size.as_f64() * 8.0 * PJ_PER_BIT * 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_scaling() {
        let x4 = PcieLink::nvme_drive();
        let x16 = PcieLink::accelerator_card();
        assert!(
            (x16.bandwidth().bytes_per_sec() / x4.bandwidth().bytes_per_sec() - 4.0).abs() < 1e-9
        );
    }

    #[test]
    fn gen4_doubles_gen3() {
        let g3 = PcieLink::new(PcieGeneration::Gen3, 4, SimDuration::ZERO, 1.0);
        let g4 = PcieLink::new(PcieGeneration::Gen4, 4, SimDuration::ZERO, 1.0);
        let ratio = g4.bandwidth().bytes_per_sec() / g3.bandwidth().bytes_per_sec();
        assert!((ratio - 2.0).abs() < 0.01);
    }

    #[test]
    fn small_transfers_pay_transaction_latency() {
        let link = PcieLink::nvme_drive();
        let t = link.transfer_latency(Bytes::from_kib(4));
        assert!(t.as_micros_f64() >= 10.0);
        assert!(t.as_micros_f64() < 13.0);
    }

    #[test]
    fn p2p_has_lower_fixed_cost_than_host_path() {
        let p2p = PcieLink::p2p_internal();
        let host = PcieLink::nvme_drive();
        let size = Bytes::from_kib(64);
        assert!(p2p.transfer_latency(size) < host.transfer_latency(size));
    }

    #[test]
    fn energy_scales_with_bytes() {
        let link = PcieLink::nvme_drive();
        let e = link.transfer_energy_joules(Bytes::from_mib(1));
        // 1 MiB * 8 bits * 6 pJ ~ 50 uJ.
        assert!(e > 4e-5 && e < 6e-5, "energy {e}");
    }

    #[test]
    fn zero_transfer_free() {
        let link = PcieLink::accelerator_card();
        assert_eq!(link.transfer_latency(Bytes::ZERO), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_rejected() {
        let _ = PcieLink::new(PcieGeneration::Gen3, 0, SimDuration::ZERO, 0.9);
    }
}
