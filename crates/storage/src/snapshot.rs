//! Process-snapshot restore model (CRIU-style cold-start path).
//!
//! A snapshot restore skips the pull-unpack-boot container lifecycle: the
//! checkpointed process image is read back from local storage, the process
//! tree is rebuilt, and execution resumes where the checkpoint left off.
//! Three costs dominate, and the model prices each:
//!
//! 1. a fixed **restore setup** latency (parsing the image manifest and
//!    rebuilding the process tree — tens of milliseconds for CRIU),
//! 2. **streaming the snapshot pages** back from local storage at the
//!    restore bandwidth, and
//! 3. a **page-fault warmup tail**: lazily-restored pages faulted back in
//!    after resume, served at a far lower effective bandwidth than the
//!    sequential stream. The tail is modelled as a fixed fraction of the
//!    snapshot re-faulted on demand, so it grows monotonically with
//!    snapshot size.
//!
//! Calibration targets published CRIU restore measurements: tens-of-MiB
//! process images restore in the low hundreds of milliseconds, an order of
//! magnitude under a registry container spawn but never free.

use serde::{Deserialize, Serialize};

use dscs_simcore::quantity::{Bandwidth, Bytes};
use dscs_simcore::time::SimDuration;

/// Configuration of the snapshot-restore path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SnapshotConfig {
    /// Sequential bandwidth for streaming snapshot pages from local storage.
    pub restore_bandwidth: Bandwidth,
    /// Fixed restore setup: image manifest parse + process-tree rebuild.
    pub restore_setup: SimDuration,
    /// Fraction of the snapshot faulted back in lazily after resume,
    /// in `[0, 1]`.
    pub warmup_fault_fraction: f64,
    /// Effective bandwidth of the demand-fault path (random 4 KiB faults,
    /// far below the sequential restore stream).
    pub fault_bandwidth: Bandwidth,
}

impl SnapshotConfig {
    /// CRIU restoring from a local NVMe drive: 2 GB/s sequential restore
    /// stream, 45 ms process-tree rebuild, 15% of pages demand-faulted at an
    /// effective 400 MB/s.
    pub fn criu_local_nvme() -> Self {
        SnapshotConfig {
            restore_bandwidth: Bandwidth::from_gbps(2.0),
            restore_setup: SimDuration::from_millis(45),
            warmup_fault_fraction: 0.15,
            fault_bandwidth: Bandwidth::from_mbps(400.0),
        }
    }
}

/// The snapshot-restore cost model: answers restore-latency queries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SnapshotStore {
    config: SnapshotConfig,
}

impl SnapshotStore {
    /// Creates a snapshot store from its configuration.
    pub fn new(config: SnapshotConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.warmup_fault_fraction),
            "warmup fault fraction must be in [0, 1]"
        );
        SnapshotStore { config }
    }

    /// The configuration.
    pub fn config(&self) -> &SnapshotConfig {
        &self.config
    }

    /// Time-to-ready for restoring a snapshot of `size` bytes: fixed setup,
    /// plus streaming the pages at the restore bandwidth, plus the
    /// page-fault warmup tail. Monotone in `size`; a zero-size snapshot is
    /// free.
    pub fn restore_latency(&self, size: Bytes) -> SimDuration {
        if size.as_u64() == 0 {
            return SimDuration::ZERO;
        }
        let faulted = size.scale(self.config.warmup_fault_fraction);
        self.config.restore_setup
            + self.config.restore_bandwidth.transfer_time(size)
            + self.config.fault_bandwidth.transfer_time(faulted)
    }

    /// The warmup-tail component alone: the post-resume demand faults for a
    /// snapshot of `size` bytes.
    pub fn warmup_tail(&self, size: Bytes) -> SimDuration {
        self.config
            .fault_bandwidth
            .transfer_time(size.scale(self.config.warmup_fault_fraction))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tens_of_mib_restore_in_low_hundreds_of_millis() {
        let store = SnapshotStore::new(SnapshotConfig::criu_local_nvme());
        let latency = store.restore_latency(Bytes::from_mib(128));
        // 45 ms setup + ~67 ms stream + ~50 ms fault tail ~ 160 ms.
        assert!(
            (0.1..0.5).contains(&latency.as_secs_f64()),
            "latency {latency}"
        );
    }

    #[test]
    fn restore_latency_is_monotone_in_snapshot_size() {
        let store = SnapshotStore::new(SnapshotConfig::criu_local_nvme());
        let mut previous = SimDuration::ZERO;
        for mib in [1, 4, 16, 64, 256, 1024] {
            let latency = store.restore_latency(Bytes::from_mib(mib));
            assert!(latency > previous, "{mib} MiB must cost more");
            previous = latency;
        }
    }

    #[test]
    fn zero_size_is_free() {
        let store = SnapshotStore::new(SnapshotConfig::criu_local_nvme());
        assert_eq!(store.restore_latency(Bytes::ZERO), SimDuration::ZERO);
        assert_eq!(store.warmup_tail(Bytes::ZERO), SimDuration::ZERO);
    }

    #[test]
    fn warmup_tail_is_part_of_the_restore() {
        let store = SnapshotStore::new(SnapshotConfig::criu_local_nvme());
        let size = Bytes::from_mib(64);
        let tail = store.warmup_tail(size);
        assert!(tail > SimDuration::ZERO);
        assert!(store.restore_latency(size) > tail);
    }

    #[test]
    fn no_lazy_pages_means_no_tail() {
        let eager = SnapshotStore::new(SnapshotConfig {
            warmup_fault_fraction: 0.0,
            ..SnapshotConfig::criu_local_nvme()
        });
        assert_eq!(eager.warmup_tail(Bytes::from_mib(64)), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "warmup fault fraction")]
    fn out_of_range_fault_fraction_rejected() {
        let _ = SnapshotStore::new(SnapshotConfig {
            warmup_fault_fraction: 1.5,
            ..SnapshotConfig::criu_local_nvme()
        });
    }
}
