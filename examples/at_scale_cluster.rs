//! At-scale comparison (Figure 13): replay a bursty request trace against a
//! 200-instance cluster of baseline CPU nodes and of DSCS-Serverless drives,
//! and print the queue depth and wall-clock latency over time.
//!
//! A shortened trace keeps the example fast; `reproduce fig13 --full` runs the
//! whole 20-minute trace.
//!
//! Run with: `cargo run --release --example at_scale_cluster`

use dscs_serverless::cluster::sim::simulate_platform;
use dscs_serverless::cluster::trace::RateProfile;
use dscs_serverless::platforms::PlatformKind;
use dscs_serverless::simcore::rng::DeterministicRng;
use dscs_serverless::simcore::time::SimDuration;

fn main() {
    // A five-minute slice of the bursty profile.
    let profile = RateProfile {
        segments: vec![
            (SimDuration::from_secs(60), 900.0),
            (SimDuration::from_secs(60), 1600.0),
            (SimDuration::from_secs(60), 2400.0),
            (SimDuration::from_secs(60), 1500.0),
            (SimDuration::from_secs(60), 900.0),
        ],
    };
    let trace = profile.generate(&mut DeterministicRng::seeded(7));
    println!("trace: {} requests over {}", trace.len(), profile.horizon());

    for platform in [PlatformKind::BaselineCpu, PlatformKind::DscsDsa] {
        let report = simulate_platform(platform, &trace, 11);
        println!("\n{}:", platform.name());
        println!(
            "  completed {} / rejected {}",
            report.completed, report.rejected
        );
        println!(
            "  mean wall-clock latency {:.1} ms, makespan {}",
            report.mean_latency_ms(),
            report.makespan
        );
        println!(
            "  queued functions per minute : {:?}",
            report.queued.iter().map(|x| x.round()).collect::<Vec<_>>()
        );
        println!(
            "  latency per minute (ms)     : {:?}",
            report
                .latency_ms
                .iter()
                .map(|x| x.round())
                .collect::<Vec<_>>()
        );
    }
}
