//! At-scale comparison (Figure 13 and beyond): replay a bursty request trace
//! and an Azure-style synthetic workload against clusters of baseline CPU
//! nodes and of DSCS-Serverless drives, under different scheduler, keepalive
//! and autoscaling policies, sharded over multiple racks.
//!
//! Every run is declared through `ExperimentBuilder` — the typed entry point
//! to cluster runs. Shortened traces keep the example fast; `reproduce
//! at-scale` runs the full declarative `SweepSpec` policy grid and writes a
//! machine-readable JSON report.
//!
//! Run with: `cargo run --release --example at_scale_cluster`

// Examples document the supported API surface: using a deprecated cluster
// entry point here is a build error, not a warning.
#![deny(deprecated)]

use std::sync::Arc;

use dscs_serverless::cluster::at_scale::{SweepScale, SweepSpec};
use dscs_serverless::cluster::data::DataLayer;
use dscs_serverless::cluster::experiment::Experiment;
use dscs_serverless::cluster::policy::SchedulerPolicy;
use dscs_serverless::cluster::policy::{KeepalivePolicy, LoadBalancer, ScalingPolicy};
use dscs_serverless::cluster::sim::{ClusterConfig, ClusterSim};
use dscs_serverless::cluster::trace::RateProfile;
use dscs_serverless::cluster::workload::{AzureWorkload, Workload};
use dscs_serverless::platforms::PlatformKind;
use dscs_serverless::simcore::rng::DeterministicRng;
use dscs_serverless::simcore::time::SimDuration;

fn main() {
    // Part 1 — the paper's Figure 13: a five-minute slice of the bursty
    // profile on a single 200-instance rack, FCFS, fixed keepalive.
    let profile = RateProfile {
        segments: vec![
            (SimDuration::from_secs(60), 900.0),
            (SimDuration::from_secs(60), 1600.0),
            (SimDuration::from_secs(60), 2400.0),
            (SimDuration::from_secs(60), 1500.0),
            (SimDuration::from_secs(60), 900.0),
        ],
    };
    let trace = Arc::new(profile.generate(&mut DeterministicRng::seeded(7)));
    println!(
        "bursty trace: {} requests over {}",
        trace.len(),
        profile.horizon()
    );

    for platform in [PlatformKind::BaselineCpu, PlatformKind::DscsDsa] {
        let report = Experiment::builder(platform)
            .trace(trace.clone())
            .seed(11)
            .build()
            .expect("the Figure-13 replay is a valid experiment")
            .run()
            .report;
        println!("\n{}:", platform.name());
        println!(
            "  completed {} / rejected {} / cold starts {}",
            report.completed, report.rejected, report.cold_starts
        );
        println!(
            "  mean wall-clock latency {:.1} ms, makespan {}",
            report.mean_latency_ms(),
            report.makespan
        );
        println!(
            "  queued functions per minute : {:?}",
            report.queued.iter().map(|x| x.round()).collect::<Vec<_>>()
        );
        println!(
            "  latency per minute (ms)     : {:?}",
            report
                .latency_ms
                .iter()
                .map(|x| x.round())
                .collect::<Vec<_>>()
        );
    }

    // Part 2 — the workload subsystem: an Azure-style trace (Zipf function
    // popularity, diurnal rate, bursts) sharded over four racks behind a
    // least-loaded balancer, with keepalive policies compared head to head.
    // `ClusterSim::new` evaluates the end-to-end model once per platform;
    // `run_on` reuses it across the policy variants.
    let azure = AzureWorkload::quick();
    let azure_trace = Arc::new(
        azure
            .generate(&mut DeterministicRng::seeded(13))
            .expect("built-in workload is valid"),
    );
    println!(
        "\nazure trace: {} requests over {} across {} functions",
        azure_trace.len(),
        azure.horizon(),
        azure.functions
    );

    let dscs = ClusterSim::new(PlatformKind::DscsDsa, ClusterConfig::default());
    for keepalive in KeepalivePolicy::all_default() {
        let outcome = Experiment::builder(PlatformKind::DscsDsa)
            .trace(azure_trace.clone())
            .racks(4)
            .balancer(LoadBalancer::LeastLoaded)
            .keepalive(keepalive)
            .seed(17)
            .build()
            .expect("valid experiment")
            .run_on(&dscs);
        println!("\nDSCS x 4 racks, {}:", keepalive.name());
        println!(
            "  cold starts {} / mean {:.1} ms / p99 {:.1} ms",
            outcome.report.cold_starts,
            outcome.report.mean_latency_ms(),
            outcome.report.p99_latency_ms()
        );
        println!(
            "  prewarm hits {} ({:.1}%) / warm-seconds held {:.0} (wasted {:.0})",
            outcome.report.prewarm_hits,
            outcome.report.prewarm_hit_rate() * 100.0,
            outcome.report.warm_seconds,
            outcome.report.wasted_warm_seconds
        );
        println!(
            "  per-rack completed: {:?}",
            outcome
                .racks
                .iter()
                .map(|r| r.completed)
                .collect::<Vec<_>>()
        );
    }

    // Part 3 — autoscaling: the same Azure trace on elastic DSCS racks. A
    // fixed cap holds 200 instances per rack for the whole run; the reactive
    // and predictive policies grow from 8 on demand, paying provisioning lag
    // on bursts but releasing the pool when traffic fades.
    println!("\nautoscaling on the azure trace (DSCS x 4 racks, prewarm keepalive):");
    for scaling in ScalingPolicy::all_default() {
        let outcome = Experiment::builder(PlatformKind::DscsDsa)
            .trace(azure_trace.clone())
            .racks(4)
            .balancer(LoadBalancer::LeastLoaded)
            .keepalive(KeepalivePolicy::prewarm_default())
            .scaling(scaling)
            .seed(17)
            .build()
            .expect("valid experiment")
            .run_on(&dscs);
        let report = &outcome.report;
        println!("\n  {}:", scaling.name());
        println!(
            "    instances/rack: peak {} low {} / scale-ups {} downs {} / lag {:.1} s",
            report.peak_instances,
            outcome
                .racks
                .iter()
                .map(|r| r.low_instances)
                .min()
                .unwrap_or(0),
            report.scale_ups,
            report.scale_downs,
            report.scaling_lag_s
        );
        println!(
            "    cold starts {} / prewarm hits {:.1}% / mean {:.1} ms / p99 {:.1} ms",
            report.cold_starts,
            report.prewarm_hit_rate() * 100.0,
            report.mean_latency_ms(),
            report.p99_latency_ms()
        );
    }

    // Part 4 — data locality: the same Azure trace with the object store
    // coupled into dispatch. Each request reads a stored object whose
    // replicas live in one rack; a rack without a replica pays the modelled
    // cross-rack fetch in both seconds and joules. The locality-aware
    // balancer follows the data and spills to least-loaded only under queue
    // pressure.
    println!("\ndata locality on the azure trace (DSCS x 4 racks, fixed keepalive):");
    let data = Arc::new(DataLayer::for_trace(&azure_trace, 4, 23));
    println!(
        "  {} distinct objects placed over {} racks ({} storage nodes)",
        data.object_count(),
        data.rack_count(),
        data.store().node_count()
    );
    for balancer in LoadBalancer::ALL {
        let report = Experiment::builder(PlatformKind::DscsDsa)
            .trace(azure_trace.clone())
            .racks(4)
            .balancer(balancer)
            .data_layer(data.clone())
            .seed(17)
            .build()
            .expect("valid experiment")
            .run_on(&dscs)
            .report;
        println!(
            "  {:<12} locality {:>5.1}% / {:>7.1} MiB cross-rack / fetch {:>6.1} s, {:>7.1} J / mean {:.1} ms",
            balancer.name(),
            report.locality_hit_rate() * 100.0,
            report.cross_rack_bytes as f64 / (1024.0 * 1024.0),
            report.fetch_latency_s,
            report.fetch_energy_j,
            report.mean_latency_ms()
        );
    }

    // Part 5 — the parallel sweep engine: a small policy grid fanned across
    // every available core. Parallelism is a pure wall-clock optimisation —
    // the report (and its JSON) is byte-identical to a `jobs: 1` run, so the
    // worker count is a free knob (`reproduce at-scale --jobs N`).
    let grid = SweepSpec {
        platforms: vec![PlatformKind::BaselineCpu, PlatformKind::DscsDsa],
        schedulers: vec![SchedulerPolicy::Fcfs],
        keepalives: vec![KeepalivePolicy::paper_default()],
        scalings: vec![ScalingPolicy::Fixed],
        balancers: vec![LoadBalancer::locality_default()],
        jobs: 0, // 0 = one worker per available core
        ..SweepSpec::default_grid(SweepScale::Smoke)
    };
    let workers = grid.effective_jobs();
    let report = grid.run().expect("the demo grid is a valid sweep spec");
    println!(
        "\nparallel sweep: {} cells on {} worker{} in {:.2} s wall",
        report.cells.len(),
        workers,
        if workers == 1 { "" } else { "s" },
        report.wall_s.get()
    );
    println!(
        "  engine throughput: {} events at {:.0} events/s",
        report.total_events(),
        report.events_per_sec()
    );
    for cell in &report.cells {
        println!(
            "  {:<12} {:<8} mean {:>6.1} ms / p99 {:>7.1} ms / {:>7} events",
            cell.workload, cell.platform, cell.mean_latency_ms, cell.p99_latency_ms, cell.events
        );
    }
}
