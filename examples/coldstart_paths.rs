//! Cold-start modalities head to head: is it cheaper to keep instances warm
//! (prewarming on the flash-reload path) or to let them die and restore a
//! process snapshot on the next invocation?
//!
//! The sweep runs one policy point per (cold path x keepalive) combination
//! over the Azure-style smoke workload: the `fresh` path always spawns from
//! the remote registry, `flash` reloads the container image from the node's
//! drive (the paper's DSCS path), and `snapshot` restores a CRIU-style
//! process checkpoint from local NVMe — priced by snapshot size, restore
//! bandwidth and the page-fault warmup tail. Every cell reports its regret
//! against the offline-optimal bound priced under its *own* modality, and
//! the final line answers the prewarm-vs-restore crossover question the
//! `reproduce at-scale` CLI prints as its headline.
//!
//! Run with: `cargo run --release --example coldstart_paths`

// Examples document the supported API surface: using a deprecated cluster
// entry point here is a build error, not a warning.
#![deny(deprecated)]

use dscs_serverless::cluster::at_scale::{SweepScale, SweepSpec};
use dscs_serverless::cluster::coldpath::{ColdStartPath, IpcTransport};
use dscs_serverless::cluster::policy::{
    KeepalivePolicy, LoadBalancer, ScalingPolicy, SchedulerPolicy,
};
use dscs_serverless::platforms::PlatformKind;
use dscs_serverless::simcore::quantity::Bytes;
use dscs_serverless::storage::snapshot::{SnapshotConfig, SnapshotStore};

fn main() {
    // The cost model behind the `snapshot` axis value, queried directly:
    // restore latency = setup + sequential page stream + demand-fault tail.
    let store = SnapshotStore::new(SnapshotConfig::criu_local_nvme());
    println!("snapshot-restore time-to-ready (CRIU from local NVMe):");
    for mib in [32, 128, 512] {
        let size = Bytes::from_mib(mib);
        println!(
            "  {mib:>4} MiB: {} ({} of it the page-fault warmup tail)",
            store.restore_latency(size),
            store.warmup_tail(size)
        );
    }

    // One sweep, modality as a first-class axis: 3 cold paths x 2 keepalive
    // policies (no keepalive vs hybrid prewarming) on one platform/policy
    // point. `ipcs` stays at its `shm` default — swap in
    // `IpcTransport::ALL.to_vec()` to also price socket/HTTP request paths.
    let report = SweepSpec {
        platforms: vec![PlatformKind::DscsDsa],
        schedulers: vec![SchedulerPolicy::Fcfs],
        keepalives: vec![
            KeepalivePolicy::NoKeepalive,
            KeepalivePolicy::prewarm_default(),
        ],
        scalings: vec![ScalingPolicy::Fixed],
        balancers: vec![LoadBalancer::RoundRobin],
        cold_paths: ColdStartPath::ALL.to_vec(),
        ipcs: vec![IpcTransport::SharedMem],
        ..SweepSpec::default_grid(SweepScale::Smoke)
    }
    .run()
    .expect("the modality grid is a valid sweep");

    println!("\nazure workload, fcfs / fixed / round-robin:");
    println!(
        "  {:<9} {:<15} {:>6} {:>12} {:>12} {:>10} {:>8}",
        "path", "keepalive", "colds", "coldstart_s", "restore_s", "bound_s", "regret"
    );
    for cell in report.cells.iter().filter(|c| c.workload == "azure") {
        println!(
            "  {:<9} {:<15} {:>6} {:>12.2} {:>12.2} {:>10.2} {:>7.1}%",
            cell.cold_path.name(),
            cell.keepalive.name(),
            cell.cold_starts,
            cell.coldstart_s,
            cell.restore_s,
            cell.optimal_coldstart_s,
            cell.regret_pct * 100.0
        );
    }

    // The crossover: best prewarmed flash cell vs best snapshot cell.
    let best = |path: ColdStartPath| {
        report
            .cells
            .iter()
            .filter(|c| c.workload == "azure" && c.cold_path == path)
            .min_by(|a, b| a.coldstart_s.total_cmp(&b.coldstart_s))
            .expect("both paths are on the sweep axis")
    };
    let prewarm = best(ColdStartPath::FlashReload);
    let restore = best(ColdStartPath::SnapshotRestore);
    println!(
        "\nprewarm vs restore: best flash cell ({}) pays {:.2} s of cold starts, \
         best snapshot cell ({}) pays {:.2} s — {}",
        prewarm.keepalive.name(),
        prewarm.coldstart_s,
        restore.keepalive.name(),
        restore.coldstart_s,
        if restore.coldstart_s < prewarm.coldstart_s {
            "snapshot restore wins"
        } else {
            "prewarming wins"
        }
    );
}
