//! Cross-validation of the trace-file ingestion path: run the same workload
//! twice through one sweep — once as the synthetic `AzureWorkload` requests
//! it was generated from (inline), once re-ingested from the checked-in
//! Azure-Functions-2019-schema CSV the `generate-trace` CLI bucketed it
//! into — and report how much the per-minute bucketing (counts + seeded
//! within-minute jitter) shifts arrival rate, latency and locality. The
//! deltas land in the report's `cross_validation` section (schema v6).
//!
//! Run with: `cargo run --release --example cross_validation`

// Examples document the supported API surface: using a deprecated cluster
// entry point here is a build error, not a warning.
#![deny(deprecated)]

use std::sync::Arc;

use dscs_serverless::cluster::at_scale::{SweepScale, SweepSpec};
use dscs_serverless::cluster::ingest::sample_workload;
use dscs_serverless::cluster::policy::{
    KeepalivePolicy, LoadBalancer, ScalingPolicy, SchedulerPolicy,
};
use dscs_serverless::cluster::workload::{azure_generation_rng, Workload, WorkloadSpec};
use dscs_serverless::platforms::PlatformKind;

fn main() {
    // The synthetic side: exactly the trace `generate-trace --sample --seed
    // 42` bucketed into data/azure_trace_sample.csv, replayed inline.
    let synthetic = sample_workload();
    let requests = synthetic
        .generate(&mut azure_generation_rng(42))
        .expect("the sample workload is valid");
    println!(
        "synthetic: {} requests over {} across {} functions",
        requests.len(),
        synthetic.horizon(),
        synthetic.functions
    );
    let inline = WorkloadSpec::Inline {
        name: "azure".into(),
        source: "synthetic".into(),
        horizon_s: synthetic.horizon().as_secs_f64(),
        trace: Arc::new(requests),
    };

    // The trace-file side: the same workload, round-tripped through the
    // Azure-schema CSV (per-minute counts, seeded within-minute jitter).
    let trace_file = WorkloadSpec::TraceFile {
        path: concat!(env!("CARGO_MANIFEST_DIR"), "/data/azure_trace_sample.csv").into(),
        day: 1,
    };

    // One restricted grid with both workloads on the declarative axis; the
    // cross-validation pairing matches cells on every policy coordinate.
    let grid = SweepSpec {
        platforms: vec![PlatformKind::DscsDsa],
        schedulers: vec![SchedulerPolicy::Fcfs],
        keepalives: vec![KeepalivePolicy::paper_default()],
        scalings: vec![ScalingPolicy::Fixed],
        balancers: vec![LoadBalancer::locality_default()],
        workloads: vec![inline, trace_file],
        ..SweepSpec::default_grid(SweepScale::Smoke)
    };
    let report = grid.run().expect("the cross-validation grid is valid");

    for w in &report.workloads {
        println!(
            "workload {:<8} {:>7} requests over {:>7.1} s  [{}]",
            w.name, w.requests, w.horizon_s, w.source
        );
    }
    for c in &report.cells {
        println!(
            "  {:<22} completed {:>6} / cold {:>4} / local {:>6.2}% / mean {:>7.1} ms / p99 {:>7.1} ms",
            c.workload_source,
            c.completed,
            c.cold_starts,
            c.locality_hit_rate * 100.0,
            c.mean_latency_ms,
            c.p99_latency_ms
        );
    }

    println!("\ncross-validation (bucketing information loss):");
    for v in report.cross_validation() {
        println!(
            "  {} vs {} over {} matched cell{}:",
            v.synthetic,
            v.trace,
            v.cells,
            if v.cells == 1 { "" } else { "s" }
        );
        println!("    arrival rate delta {:+.2}%", v.rate_delta_pct);
        println!("    mean latency delta {:+.2}%", v.mean_delta_pct);
        println!("    p99 latency delta  {:+.2}%", v.p99_delta_pct);
        println!("    locality delta     {:+.4}", v.locality_delta);
    }
}
