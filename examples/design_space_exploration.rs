//! Design-space exploration of the in-storage DSA (Figures 7 and 8) plus the
//! cost-efficiency view (Figure 12), on a reduced sweep so the example runs in
//! seconds. Use `cargo run --release -p dscs-bench --bin reproduce -- fig7 --full`
//! for the complete 650+-point sweep.
//!
//! Run with: `cargo run --example design_space_exploration`

use dscs_serverless::dsa::config::TechnologyNode;
use dscs_serverless::dse::cost::{AsicCostModel, CostParameters};
use dscs_serverless::dse::explore::{
    power_performance_frontier, select_optimal, sweep, DRIVE_POWER_BUDGET_WATTS,
};
use dscs_serverless::dse::space::enumerate_small;
use dscs_serverless::nn::zoo::ModelKind;
use dscs_serverless::simcore::quantity::AreaMm2;

fn main() {
    let space = enumerate_small(TechnologyNode::Nm45);
    println!(
        "evaluating {} design points at 45 nm under a {DRIVE_POWER_BUDGET_WATTS} W drive budget",
        space.len()
    );

    let points = sweep(&space, &[ModelKind::ResNet50, ModelKind::BertBase]);
    println!(
        "\n{:<26} {:>14} {:>10} {:>10}",
        "config", "ips", "power W", "area mm2"
    );
    for p in &points {
        println!(
            "{:<26} {:>14.1} {:>10.2} {:>10.1}",
            p.config.label(),
            p.throughput_ips,
            p.power_watts,
            p.area_mm2
        );
    }

    let frontier = power_performance_frontier(&points);
    println!("\npower-performance Pareto frontier (within the drive budget):");
    for p in &frontier {
        println!(
            "  {:<26} {:>12.1} ips @ {:>6.2} W",
            p.config.label(),
            p.throughput_ips,
            p.power_watts
        );
    }

    let best = select_optimal(&points).expect("non-empty frontier");
    println!("\nselected configuration: {}", best.config);

    // The ASIC-Clouds-style die cost feeds the CAPEX side of the cost model.
    let die_cost = AsicCostModel::default().die_cost(AreaMm2::new(best.area_mm2));
    let params = CostParameters::default();
    println!("estimated DSA die cost: {die_cost}");
    println!(
        "cost efficiency of the selected design (requests per dollar over {} years at {:.0}% utilisation): {:.0}",
        params.years,
        params.utilization * 100.0,
        params.cost_efficiency(best.throughput_ips, dscs_serverless::simcore::quantity::Watts::new(best.power_watts), die_cost)
    );
}
