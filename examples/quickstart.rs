//! Quickstart: evaluate one serverless application end to end on the baseline
//! CPU (with remote storage) and on DSCS-Serverless, and print the latency
//! breakdown and speedup.
//!
//! Run with: `cargo run --example quickstart`

use dscs_serverless::core::benchmarks::Benchmark;
use dscs_serverless::core::endtoend::{EvalOptions, LatencyBreakdown, SystemModel};
use dscs_serverless::platforms::PlatformKind;

fn print_breakdown(label: &str, b: &LatencyBreakdown) {
    println!("{label}");
    println!("  remote read     : {:>10}", b.remote_read);
    println!("  remote write    : {:>10}", b.remote_write);
    println!("  local / P2P I/O : {:>10}", b.local_io);
    println!("  device copy     : {:>10}", b.device_copy);
    println!("  compute         : {:>10}", b.compute);
    println!("  notification    : {:>10}", b.notification);
    println!("  system stack    : {:>10}", b.system_stack);
    println!(
        "  total           : {:>10}  (communication share {:.0}%)",
        b.total(),
        b.communication_fraction() * 100.0
    );
}

fn main() {
    let system = SystemModel::new();
    let benchmark = Benchmark::PpeDetection;
    let options = EvalOptions::default();

    println!("benchmark: {benchmark} ({})", benchmark.spec().description);

    let baseline = system.evaluate(benchmark, PlatformKind::BaselineCpu, options);
    let dscs = system.evaluate(benchmark, PlatformKind::DscsDsa, options);

    print_breakdown("\nBaseline (CPU) with remote storage:", &baseline.latency);
    print_breakdown("\nDSCS-Serverless (in-storage DSA):", &dscs.latency);

    let speedup = baseline.total_latency().as_secs_f64() / dscs.total_latency().as_secs_f64();
    let energy = baseline.total_energy().as_f64() / dscs.total_energy().as_f64();
    println!("\nDSCS-Serverless speedup over the baseline : {speedup:.2}x");
    println!("DSCS-Serverless energy reduction           : {energy:.2}x");
}
