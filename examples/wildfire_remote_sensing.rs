//! The paper's motivating scenario: wildfire detection over drone imagery
//! (the SDG&E remote-sensing application).
//!
//! The example walks the whole DSCS-Serverless flow: parse the deployment
//! configuration (with the `acceleratable` hints), deploy it to the function
//! registry, place the incoming image on a DSCS-Drive in the object store,
//! schedule the request with the DSCS-aware scheduler, and compare the
//! end-to-end latency against the traditional remote-storage execution —
//! including what happens when the drone uploads a burst of images (batching).
//!
//! Run with: `cargo run --example wildfire_remote_sensing`

use dscs_serverless::core::benchmarks::Benchmark;
use dscs_serverless::core::endtoend::{EvalOptions, SystemModel};
use dscs_serverless::faas::config::parse_deployment;
use dscs_serverless::faas::registry::FunctionRegistry;
use dscs_serverless::faas::scheduler::{NodeCapability, NodeId, PendingRequest, Scheduler};
use dscs_serverless::platforms::PlatformKind;
use dscs_serverless::simcore::rng::DeterministicRng;
use dscs_serverless::storage::object_store::ObjectStore;

const DEPLOYMENT_YAML: &str = r#"
app: remote-sensing
provider: openfaas
functions:
  - name: decode-and-resize
    role: preprocess
    acceleratable: true
    image_mb: 180
  - name: wildfire-vit
    role: inference
    acceleratable: true
    image_mb: 480
    timeout_s: 30
  - name: alert-dispatch
    role: notification
    acceleratable: false
    image_mb: 60
"#;

fn main() {
    // 1. Deploy the application.
    let pipeline = parse_deployment(DEPLOYMENT_YAML).expect("deployment config is valid");
    let mut registry = FunctionRegistry::new();
    registry.deploy(pipeline).expect("first deployment");
    println!("deployed applications: {:?}", registry.app_names());

    // 2. The drone image arrives at the object store; the replica of an
    //    acceleratable function's input lands on a DSCS-Drive.
    let mut store = ObjectStore::with_node_counts(6, 2);
    let mut rng = DeterministicRng::seeded(2024);
    let spec = Benchmark::RemoteSensing.spec();
    let meta = store
        .put("drone/frame-000193.jpg", spec.input_size, true, &mut rng)
        .expect("store has DSCS nodes");
    let data_node = store
        .dscs_replica("drone/frame-000193.jpg")
        .expect("object exists")
        .expect("has a DSCS replica");
    println!(
        "image ({}) stored with replicas {:?}; DSCS replica on node {:?}",
        meta.size, meta.replicas, data_node
    );

    // 3. Schedule the request: the DSCS-aware scheduler maps it onto the
    //    storage node that already holds the data.
    let mut scheduler = Scheduler::new(
        (0..6u32)
            .map(|i| (NodeId(i), NodeCapability::Compute))
            .chain((6..8u32).map(|i| (NodeId(i), NodeCapability::DscsStorage))),
        10_000,
    );
    scheduler
        .submit(PendingRequest {
            id: 1,
            app: "remote-sensing".to_string(),
            acceleratable: true,
            data_node: Some(NodeId(6 + data_node.0 % 2)),
        })
        .expect("queue has room");
    let placements = scheduler.dispatch();
    println!("scheduler placement: {:?}", placements[0].1);

    // 4. Evaluate the end-to-end latency on both systems.
    let system = SystemModel::new();
    for batch in [1u64, 8, 64] {
        let options = EvalOptions {
            batch,
            ..EvalOptions::default()
        };
        let baseline =
            system.evaluate(Benchmark::RemoteSensing, PlatformKind::BaselineCpu, options);
        let dscs = system.evaluate(Benchmark::RemoteSensing, PlatformKind::DscsDsa, options);
        println!(
            "batch {batch:>3}: baseline {:>9.1} ms | DSCS {:>9.1} ms | speedup {:>5.2}x | per-image DSCS latency {:>7.1} ms",
            baseline.total_latency().as_millis_f64(),
            dscs.total_latency().as_millis_f64(),
            baseline.total_latency().as_secs_f64() / dscs.total_latency().as_secs_f64(),
            dscs.total_latency().as_millis_f64() / batch as f64,
        );
    }
}
