//! # dscs-serverless
//!
//! A full-system, simulation-based reproduction of **"In-Storage
//! Domain-Specific Acceleration for Serverless Computing"** (ASPLOS 2024):
//! the DSCS-Serverless execution model, the in-storage domain-specific
//! accelerator it relies on, and every substrate needed to regenerate the
//! paper's evaluation.
//!
//! This umbrella crate re-exports the workspace's crates under one roof:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`simcore`] | `dscs-simcore` | simulated time, quantities, distributions, statistics, event engine |
//! | [`nn`] | `dscs-nn` | ML operator IR and the eight-benchmark model zoo |
//! | [`dsa`] | `dscs-dsa` | the in-storage accelerator's cycle, power and area models |
//! | [`compiler`] | `dscs-compiler` | fusion, tiling and code generation onto the DSA |
//! | [`storage`] | `dscs-storage` | flash, PCIe, P2P, network/RPC and object-store models |
//! | [`platforms`] | `dscs-platforms` | CPU / GPU / FPGA / ARM / mobile-GPU / NS-FPGA / DSA platform models |
//! | [`faas`] | `dscs-faas` | serverless functions, deployment configs, registry, scheduler, cold starts |
//! | [`cluster`] | `dscs-cluster` | the 200-instance at-scale datacenter simulation |
//! | [`dse`] | `dscs-dse` | design-space exploration and the CAPEX/OPEX cost model |
//! | [`core`] | `dscs-core` | the end-to-end DSCS-Serverless execution model and experiment runners |
//!
//! # Quickstart
//!
//! ```
//! use dscs_serverless::core::benchmarks::Benchmark;
//! use dscs_serverless::core::endtoend::{EvalOptions, SystemModel};
//! use dscs_serverless::platforms::PlatformKind;
//!
//! let system = SystemModel::new();
//! let baseline = system.evaluate(Benchmark::RemoteSensing, PlatformKind::BaselineCpu, EvalOptions::default());
//! let dscs = system.evaluate(Benchmark::RemoteSensing, PlatformKind::DscsDsa, EvalOptions::default());
//! let speedup = baseline.total_latency().as_secs_f64() / dscs.total_latency().as_secs_f64();
//! assert!(speedup > 1.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dscs_cluster as cluster;
pub use dscs_compiler as compiler;
pub use dscs_core as core;
pub use dscs_dsa as dsa;
pub use dscs_dse as dse;
pub use dscs_faas as faas;
pub use dscs_nn as nn;
pub use dscs_platforms as platforms;
pub use dscs_simcore as simcore;
pub use dscs_storage as storage;
