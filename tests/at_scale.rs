//! Integration tests for the at-scale workload subsystem: the policy sweep,
//! multi-rack sharding, autoscaling and prewarming, and the machine-readable
//! report CI uploads.

use dscs_serverless::cluster::at_scale::{at_scale_sweep, AtScaleOptions};
use dscs_serverless::cluster::policy::{
    KeepalivePolicy, LoadBalancer, ScalingPolicy, SchedulerPolicy,
};
use dscs_serverless::cluster::sim::{ClusterConfig, ClusterSim};
use dscs_serverless::cluster::workload::{AzureWorkload, Workload, WorkloadError};
use dscs_serverless::platforms::PlatformKind;
use dscs_serverless::simcore::json::JsonValue;
use dscs_serverless::simcore::rng::DeterministicRng;

/// The smoke-sweep report captured at PR 2, before the autoscaling and
/// prewarming axes existed. Every fixed-cap cell of today's sweep must still
/// produce exactly these numbers.
const PR2_GOLDEN_SMOKE: &str = include_str!("golden/at_scale_smoke_pr2.json");

#[test]
fn fixed_seed_sweep_report_is_byte_for_byte_reproducible() {
    let options = AtScaleOptions::smoke();
    let a = at_scale_sweep(options).to_json();
    let b = at_scale_sweep(options).to_json();
    assert_eq!(a, b);
    // A different seed changes the report.
    let c = at_scale_sweep(AtScaleOptions {
        seed: options.seed + 1,
        ..options
    })
    .to_json();
    assert_ne!(a, c);
}

#[test]
fn sweep_covers_both_platforms_all_policies_and_both_workloads() {
    let report = at_scale_sweep(AtScaleOptions::smoke());
    for platform in [PlatformKind::BaselineCpu, PlatformKind::DscsDsa] {
        for workload in ["bursty", "azure"] {
            let cells = report.cells_for(workload, platform);
            assert_eq!(
                cells.len(),
                SchedulerPolicy::ALL.len()
                    * KeepalivePolicy::all_default().len()
                    * ScalingPolicy::all_default().len(),
                "{workload}/{platform:?}"
            );
        }
    }
}

/// Golden regression test: the fixed-cap cells of today's sweep are
/// byte-identical (every shared metric, compared on parsed JSON values, so
/// float equality is exact) to the report PR 2 produced for the same seed.
/// The autoscaling and prewarming axes may only *add* cells and fields.
#[test]
fn fixed_cap_cells_match_the_pr2_golden_report() {
    let golden = JsonValue::parse(PR2_GOLDEN_SMOKE).expect("golden fixture parses");
    let current = JsonValue::parse(&at_scale_sweep(AtScaleOptions::smoke()).to_json())
        .expect("sweep report parses");
    let key = |cell: &JsonValue| -> Vec<String> {
        ["workload", "platform", "scheduler", "keepalive"]
            .iter()
            .map(|k| {
                cell.get(k)
                    .and_then(JsonValue::as_str)
                    .expect("cell identity field")
                    .to_string()
            })
            .collect()
    };
    let current_cells = current
        .get("cells")
        .and_then(JsonValue::as_array)
        .expect("cells");
    let golden_cells = golden
        .get("cells")
        .and_then(JsonValue::as_array)
        .expect("cells");
    assert!(!golden_cells.is_empty());
    for golden_cell in golden_cells {
        let golden_key = key(golden_cell);
        let fixed = current_cells
            .iter()
            .find(|c| {
                c.get("scaling").and_then(JsonValue::as_str) == Some("fixed")
                    && key(c) == golden_key
            })
            .unwrap_or_else(|| panic!("no fixed cell for {golden_key:?}"));
        let JsonValue::Object(golden_fields) = golden_cell else {
            panic!("golden cell is not an object")
        };
        for (field, golden_value) in golden_fields {
            let current_value = fixed
                .get(field)
                .unwrap_or_else(|| panic!("{golden_key:?} lost field {field}"));
            assert_eq!(
                current_value, golden_value,
                "{golden_key:?}: field {field} drifted from the PR 2 report"
            );
        }
    }
}

/// Golden integration test for prewarming: on the bursty Azure workload the
/// hybrid histogram's prewarm window finds warm instances (non-zero hit
/// rate), and never pays more cold starts than the same seed without
/// prewarming.
#[test]
fn prewarming_hits_without_extra_cold_starts_on_azure() {
    let report = at_scale_sweep(AtScaleOptions::smoke());
    for platform in [PlatformKind::BaselineCpu, PlatformKind::DscsDsa] {
        for scaling in ["fixed", "reactive", "predictive"] {
            let prewarm = report
                .cell("azure", platform, "fcfs", "hybrid-prewarm", scaling)
                .expect("prewarm cell swept");
            let baseline = report
                .cell("azure", platform, "fcfs", "hybrid-histogram", scaling)
                .expect("no-prewarm cell swept");
            assert!(
                prewarm.prewarm_hit_rate > 0.0,
                "{platform:?}/{scaling}: prewarm hit rate must be non-zero"
            );
            assert!(prewarm.prewarm_hits > 0);
            assert_eq!(baseline.prewarm_hits, 0);
            assert!(
                prewarm.cold_starts <= baseline.cold_starts,
                "{platform:?}/{scaling}: prewarm {} vs baseline {} cold starts",
                prewarm.cold_starts,
                baseline.cold_starts
            );
        }
    }
}

/// Elastic cells expose the scaling-lag metrics the Figure-17-style
/// comparison needs: on the Azure workload the reactive and predictive racks
/// scale up from `min_instances`, pay provisioning lag, and stay within
/// bounds.
#[test]
fn elastic_azure_cells_report_scaling_lag() {
    let report = at_scale_sweep(AtScaleOptions::smoke());
    for scaling in ["reactive", "predictive"] {
        let cell = report
            .cell(
                "azure",
                PlatformKind::BaselineCpu,
                "fcfs",
                "hybrid-prewarm",
                scaling,
            )
            .expect("elastic cell swept");
        assert!(cell.scale_ups > 0, "{scaling}: must scale up");
        assert!(cell.scaling_lag_s > 0.0, "{scaling}: lag metric populated");
        assert!(cell.peak_instances > 8 && cell.peak_instances <= 200);
    }
}

#[test]
fn multi_rack_run_is_deterministic_across_balancers() {
    let azure = AzureWorkload {
        functions: 12,
        base_rps: 250.0,
        horizon: dscs_serverless::simcore::time::SimDuration::from_secs(30),
        ..AzureWorkload::default()
    };
    let trace = azure
        .generate(&mut DeterministicRng::seeded(5))
        .expect("valid");
    let sim = ClusterSim::new(PlatformKind::DscsDsa, ClusterConfig::default());
    for balancer in LoadBalancer::ALL {
        let (a, racks_a) = sim.run_sharded(&trace, 9, 3, balancer);
        let (b, racks_b) = sim.run_sharded(&trace, 9, 3, balancer);
        assert_eq!(a, b, "{balancer:?} aggregate");
        assert_eq!(racks_a, racks_b, "{balancer:?} racks");
        assert_eq!(a.completed + a.rejected, trace.len() as u64);
    }
}

#[test]
fn keepalive_policies_order_cold_start_counts() {
    // Sparse arrivals so invocations rarely overlap: no-keepalive runs cold
    // almost every time, the fixed window almost never (trace << window).
    let azure = AzureWorkload {
        functions: 8,
        base_rps: 4.0,
        horizon: dscs_serverless::simcore::time::SimDuration::from_secs(60),
        ..AzureWorkload::default()
    };
    let trace = azure
        .generate(&mut DeterministicRng::seeded(6))
        .expect("valid");
    let run = |keepalive| {
        let config = ClusterConfig {
            keepalive,
            ..ClusterConfig::default()
        };
        ClusterSim::new(PlatformKind::DscsDsa, config).run(&trace, 3)
    };
    let none = run(KeepalivePolicy::NoKeepalive);
    let fixed = run(KeepalivePolicy::paper_default());
    let hybrid = run(KeepalivePolicy::hybrid_default());
    assert!(
        none.cold_starts > fixed.cold_starts,
        "none {} vs fixed {}",
        none.cold_starts,
        fixed.cold_starts
    );
    assert!(
        hybrid.cold_starts <= none.cold_starts,
        "hybrid {} vs none {}",
        hybrid.cold_starts,
        none.cold_starts
    );
    assert!(none.mean_latency_ms() > fixed.mean_latency_ms());
}

#[test]
fn workload_validation_errors_are_typed_and_displayable() {
    let bad = AzureWorkload {
        base_rps: -1.0,
        ..AzureWorkload::default()
    };
    let err = bad
        .generate(&mut DeterministicRng::seeded(1))
        .expect_err("negative rate must be rejected");
    assert!(matches!(err, WorkloadError::InvalidRate { .. }));
    assert!(err.to_string().contains("invalid rate"));
}
