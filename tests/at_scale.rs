//! Integration tests for the at-scale workload subsystem: the policy sweep,
//! multi-rack sharding, and the machine-readable report CI uploads.

use dscs_serverless::cluster::at_scale::{at_scale_sweep, AtScaleOptions};
use dscs_serverless::cluster::policy::{KeepalivePolicy, LoadBalancer, SchedulerPolicy};
use dscs_serverless::cluster::sim::{ClusterConfig, ClusterSim};
use dscs_serverless::cluster::workload::{AzureWorkload, Workload, WorkloadError};
use dscs_serverless::platforms::PlatformKind;
use dscs_serverless::simcore::rng::DeterministicRng;

#[test]
fn fixed_seed_sweep_report_is_byte_for_byte_reproducible() {
    let options = AtScaleOptions::smoke();
    let a = at_scale_sweep(options).to_json();
    let b = at_scale_sweep(options).to_json();
    assert_eq!(a, b);
    // A different seed changes the report.
    let c = at_scale_sweep(AtScaleOptions {
        seed: options.seed + 1,
        ..options
    })
    .to_json();
    assert_ne!(a, c);
}

#[test]
fn sweep_covers_both_platforms_all_policies_and_both_workloads() {
    let report = at_scale_sweep(AtScaleOptions::smoke());
    for platform in [PlatformKind::BaselineCpu, PlatformKind::DscsDsa] {
        for workload in ["bursty", "azure"] {
            let cells = report.cells_for(workload, platform);
            assert_eq!(
                cells.len(),
                SchedulerPolicy::ALL.len() * KeepalivePolicy::all_default().len(),
                "{workload}/{platform:?}"
            );
        }
    }
}

#[test]
fn multi_rack_run_is_deterministic_across_balancers() {
    let azure = AzureWorkload {
        functions: 12,
        base_rps: 250.0,
        horizon: dscs_serverless::simcore::time::SimDuration::from_secs(30),
        ..AzureWorkload::default()
    };
    let trace = azure
        .generate(&mut DeterministicRng::seeded(5))
        .expect("valid");
    let sim = ClusterSim::new(PlatformKind::DscsDsa, ClusterConfig::default());
    for balancer in LoadBalancer::ALL {
        let (a, racks_a) = sim.run_sharded(&trace, 9, 3, balancer);
        let (b, racks_b) = sim.run_sharded(&trace, 9, 3, balancer);
        assert_eq!(a, b, "{balancer:?} aggregate");
        assert_eq!(racks_a, racks_b, "{balancer:?} racks");
        assert_eq!(a.completed + a.rejected, trace.len() as u64);
    }
}

#[test]
fn keepalive_policies_order_cold_start_counts() {
    // Sparse arrivals so invocations rarely overlap: no-keepalive runs cold
    // almost every time, the fixed window almost never (trace << window).
    let azure = AzureWorkload {
        functions: 8,
        base_rps: 4.0,
        horizon: dscs_serverless::simcore::time::SimDuration::from_secs(60),
        ..AzureWorkload::default()
    };
    let trace = azure
        .generate(&mut DeterministicRng::seeded(6))
        .expect("valid");
    let run = |keepalive| {
        let config = ClusterConfig {
            keepalive,
            ..ClusterConfig::default()
        };
        ClusterSim::new(PlatformKind::DscsDsa, config).run(&trace, 3)
    };
    let none = run(KeepalivePolicy::NoKeepalive);
    let fixed = run(KeepalivePolicy::paper_default());
    let hybrid = run(KeepalivePolicy::hybrid_default());
    assert!(
        none.cold_starts > fixed.cold_starts,
        "none {} vs fixed {}",
        none.cold_starts,
        fixed.cold_starts
    );
    assert!(
        hybrid.cold_starts <= none.cold_starts,
        "hybrid {} vs none {}",
        hybrid.cold_starts,
        none.cold_starts
    );
    assert!(none.mean_latency_ms() > fixed.mean_latency_ms());
}

#[test]
fn workload_validation_errors_are_typed_and_displayable() {
    let bad = AzureWorkload {
        base_rps: -1.0,
        ..AzureWorkload::default()
    };
    let err = bad
        .generate(&mut DeterministicRng::seeded(1))
        .expect_err("negative rate must be rejected");
    assert!(matches!(err, WorkloadError::InvalidRate { .. }));
    assert!(err.to_string().contains("invalid rate"));
}
