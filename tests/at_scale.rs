//! Integration tests for the at-scale workload subsystem: the policy sweep,
//! multi-rack sharding, autoscaling and prewarming, data-locality-aware
//! dispatch, and the machine-readable report CI uploads.

use std::sync::{Arc, OnceLock};

use dscs_serverless::cluster::at_scale::{at_scale_sweep, AtScaleOptions, AtScaleReport};
use dscs_serverless::cluster::experiment::Experiment;
use dscs_serverless::cluster::policy::{
    KeepalivePolicy, LoadBalancer, ScalingPolicy, SchedulerPolicy,
};
use dscs_serverless::cluster::workload::{AzureWorkload, Workload, WorkloadError};
use dscs_serverless::platforms::PlatformKind;
use dscs_serverless::simcore::rng::DeterministicRng;

/// The pinned smoke-sweep report (file name kept from the PR 4 capture that
/// first pinned it; now schema v8: on top of the v7 regret fields, every
/// cell carries its `cold_path` / `ipc` modality identity plus the
/// `restore_s` / `ipc_overhead_s` charges — at the single-valued default
/// axes they render the historical values, so the v7 fields are unchanged
/// bytes). Today's sweep must reproduce it byte-for-byte;
/// regenerate deliberately with `UPDATE_GOLDEN=1 cargo test --test at_scale`.
const PR4_GOLDEN_SMOKE: &str = include_str!("golden/at_scale_smoke_pr4.json");

/// One shared smoke sweep (432 cells) for the tests that only read it.
fn smoke_report() -> &'static AtScaleReport {
    static REPORT: OnceLock<AtScaleReport> = OnceLock::new();
    REPORT.get_or_init(|| at_scale_sweep(AtScaleOptions::smoke()))
}

#[test]
fn fixed_seed_sweep_report_is_byte_for_byte_reproducible() {
    let options = AtScaleOptions::smoke();
    let a = at_scale_sweep(options).to_json();
    let b = smoke_report().to_json();
    assert_eq!(a, b);
    // A different seed changes the report.
    let c = at_scale_sweep(AtScaleOptions {
        seed: options.seed + 1,
        ..options
    })
    .to_json();
    assert_ne!(a, c);
}

#[test]
fn sweep_covers_both_platforms_all_policies_and_both_workloads() {
    let report = smoke_report();
    for platform in [PlatformKind::BaselineCpu, PlatformKind::DscsDsa] {
        for workload in ["bursty", "azure"] {
            let cells = report.cells_for(workload, platform);
            assert_eq!(
                cells.len(),
                SchedulerPolicy::ALL.len()
                    * KeepalivePolicy::all_default().len()
                    * ScalingPolicy::all_default().len()
                    * LoadBalancer::ALL.len(),
                "{workload}/{platform:?}"
            );
        }
    }
}

/// Golden regression test: the whole schema-v7 smoke report is pinned
/// byte-for-byte against the regenerated fixture. Any drift in trace
/// generation, placement, dispatch, charging or JSON rendering — including
/// through the new `Experiment` path every cell now runs on — shows up here
/// immediately.
#[test]
fn smoke_sweep_matches_the_pr4_golden_report() {
    let json = smoke_report().to_json();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/at_scale_smoke_pr4.json"
        );
        std::fs::write(path, &json).expect("write golden fixture");
        return;
    }
    if json != PR4_GOLDEN_SMOKE {
        let diverges_at = json
            .bytes()
            .zip(PR4_GOLDEN_SMOKE.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| json.len().min(PR4_GOLDEN_SMOKE.len()));
        let start = diverges_at.saturating_sub(120);
        panic!(
            "smoke report drifted from the golden fixture at byte {diverges_at}:\n\
             current:  ...{}\n\
             golden:   ...{}\n\
             (regenerate deliberately with UPDATE_GOLDEN=1 cargo test --test at_scale)",
            &json[start..(diverges_at + 120).min(json.len())],
            &PR4_GOLDEN_SMOKE[start..(diverges_at + 120).min(PR4_GOLDEN_SMOKE.len())],
        );
    }
}

/// Removes one measured run starting at `from`: `,"wall_s":...,
/// "events_per_sec":...`, plus — at the root only — the worker knobs
/// recorded with them (`,"jobs":...,"rack_jobs":...`). Returns the index
/// just past the removed span.
fn strip_measured_run(json: &mut String, from: usize) -> usize {
    let eps_key = "\"events_per_sec\":";
    let eps = json[from..].find(eps_key).expect("keys always paired") + from;
    let value_start = eps + eps_key.len();
    let value_len = json[value_start..]
        .find([',', '}'])
        .expect("JSON continues after the value");
    json.replace_range(from..value_start + value_len, "");
    for knob in ["\"jobs\":", "\"rack_jobs\":"] {
        if json[from..].starts_with(',') && json[from + 1..].starts_with(knob) {
            let value_start = from + 1 + knob.len();
            let value_len = json[value_start..]
                .find([',', '}'])
                .expect("JSON continues after the value");
            json.replace_range(from..value_start + value_len, "");
        }
    }
    from
}

/// The throughput rendering is the deterministic golden report plus *only*
/// the measured keys: stripping every `wall_s`/`events_per_sec` pair (and
/// the root's `jobs`/`rack_jobs` worker knobs, which ride in the measured
/// section so they never enter cell identity) from
/// `to_json_with_throughput()` must recover the golden bytes exactly, and
/// the measured keys must appear once per cell plus once at the root.
#[test]
fn throughput_report_strips_back_to_the_golden_bytes() {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        return; // the fixture is being rewritten; nothing to compare against
    }
    let report = smoke_report();
    let mut json = report.to_json_with_throughput();
    let mut runs = 0;
    while let Some(at) = json.find(",\"wall_s\":") {
        strip_measured_run(&mut json, at);
        runs += 1;
    }
    assert_eq!(
        runs,
        report.cells.len() + 1,
        "one measured pair per cell plus the aggregate"
    );
    assert_eq!(
        json, PR4_GOLDEN_SMOKE,
        "throughput report must add nothing beyond the measured keys"
    );
}

/// Schema-v8 regression: every cell of the default smoke report is tagged
/// with the historical modality identity (`flash` cold path over `shm`
/// IPC), carries the per-modality charge fields, and — at those defaults —
/// charges nothing, so pre-v8 numbers are untouched.
#[test]
fn smoke_report_carries_the_v8_modality_fields_at_their_defaults() {
    let report = smoke_report();
    let json = report.to_json();
    assert!(json.contains("\"schema\":\"dscs-at-scale-v8\""));
    let cells = report.cells.len();
    assert_eq!(json.matches("\"cold_path\":\"flash\"").count(), cells);
    assert_eq!(json.matches("\"ipc\":\"shm\"").count(), cells);
    assert_eq!(json.matches("\"restore_s\":").count(), cells);
    assert_eq!(json.matches("\"ipc_overhead_s\":").count(), cells);
    for cell in &report.cells {
        assert_eq!(cell.restore_s, 0.0, "flash cells never restore snapshots");
        assert_eq!(cell.ipc_overhead_s, 0.0, "shared-memory IPC is free");
    }
}

/// Golden integration test for prewarming: on the bursty Azure workload the
/// hybrid histogram's prewarm window finds warm instances (non-zero hit
/// rate), and never pays more cold starts than the same seed without
/// prewarming.
#[test]
fn prewarming_hits_without_extra_cold_starts_on_azure() {
    let report = smoke_report();
    for platform in [PlatformKind::BaselineCpu, PlatformKind::DscsDsa] {
        for scaling in ["fixed", "reactive", "predictive"] {
            let prewarm = report
                .cell(
                    "azure",
                    platform,
                    "fcfs",
                    "hybrid-prewarm",
                    scaling,
                    "round-robin",
                )
                .expect("prewarm cell swept");
            let baseline = report
                .cell(
                    "azure",
                    platform,
                    "fcfs",
                    "hybrid-histogram",
                    scaling,
                    "round-robin",
                )
                .expect("no-prewarm cell swept");
            assert!(
                prewarm.prewarm_hit_rate > 0.0,
                "{platform:?}/{scaling}: prewarm hit rate must be non-zero"
            );
            assert!(prewarm.prewarm_hits > 0);
            assert_eq!(baseline.prewarm_hits, 0);
            assert!(
                prewarm.cold_starts <= baseline.cold_starts,
                "{platform:?}/{scaling}: prewarm {} vs baseline {} cold starts",
                prewarm.cold_starts,
                baseline.cold_starts
            );
        }
    }
}

/// Elastic cells expose the scaling-lag metrics the Figure-17-style
/// comparison needs: on the Azure workload the reactive and predictive racks
/// scale up from `min_instances`, pay provisioning lag, and stay within
/// bounds.
#[test]
fn elastic_azure_cells_report_scaling_lag() {
    let report = smoke_report();
    for scaling in ["reactive", "predictive"] {
        let cell = report
            .cell(
                "azure",
                PlatformKind::BaselineCpu,
                "fcfs",
                "hybrid-prewarm",
                scaling,
                "round-robin",
            )
            .expect("elastic cell swept");
        assert!(cell.scale_ups > 0, "{scaling}: must scale up");
        assert!(cell.scaling_lag_s > 0.0, "{scaling}: lag metric populated");
        assert!(cell.peak_instances > 8 && cell.peak_instances <= 200);
    }
}

/// Acceptance criterion of the data-locality refactor, pinned at the
/// integration level: on the Azure workload the locality-aware balancer
/// achieves a strictly higher locality hit rate, moves fewer bytes across
/// racks, and lands a lower mean latency than round-robin — deterministically,
/// since the whole report is golden-pinned.
#[test]
fn locality_aware_balancing_beats_round_robin_on_azure_cells() {
    let report = smoke_report();
    for platform in [PlatformKind::BaselineCpu, PlatformKind::DscsDsa] {
        let cell = |balancer: &str| {
            report
                .cell("azure", platform, "fcfs", "fixed-window", "fixed", balancer)
                .expect("cell swept")
        };
        let rr = cell("round-robin");
        let local = cell("locality");
        assert!(
            local.locality_hit_rate > rr.locality_hit_rate,
            "{platform:?}: locality hit rate {} must beat round-robin {}",
            local.locality_hit_rate,
            rr.locality_hit_rate
        );
        assert!(
            local.cross_rack_bytes < rr.cross_rack_bytes,
            "{platform:?}: locality must move fewer bytes"
        );
        assert!(
            local.mean_latency_ms < rr.mean_latency_ms,
            "{platform:?}: locality mean {} ms must beat round-robin {} ms",
            local.mean_latency_ms,
            rr.mean_latency_ms
        );
        assert!(local.fetch_latency_s <= rr.fetch_latency_s);
        assert!(
            local.fetch_energy_j <= rr.fetch_energy_j,
            "{platform:?}: locality {} J must not exceed round-robin {} J",
            local.fetch_energy_j,
            rr.fetch_energy_j
        );
    }
}

#[test]
fn multi_rack_run_is_deterministic_across_balancers() {
    let azure = AzureWorkload {
        functions: 12,
        base_rps: 250.0,
        horizon: dscs_serverless::simcore::time::SimDuration::from_secs(30),
        ..AzureWorkload::default()
    };
    let trace = Arc::new(
        azure
            .generate(&mut DeterministicRng::seeded(5))
            .expect("valid"),
    );
    for balancer in LoadBalancer::ALL {
        let run = || {
            Experiment::builder(PlatformKind::DscsDsa)
                .trace(trace.clone())
                .racks(3)
                .balancer(balancer)
                .seed(9)
                .build()
                .expect("valid experiment")
                .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.report, b.report, "{balancer:?} aggregate");
        assert_eq!(a.racks, b.racks, "{balancer:?} racks");
        assert_eq!(a.report.completed + a.report.rejected, trace.len() as u64);
    }
}

#[test]
fn keepalive_policies_order_cold_start_counts() {
    // Sparse arrivals so invocations rarely overlap: no-keepalive runs cold
    // almost every time, the fixed window almost never (trace << window).
    let azure = AzureWorkload {
        functions: 8,
        base_rps: 4.0,
        horizon: dscs_serverless::simcore::time::SimDuration::from_secs(60),
        ..AzureWorkload::default()
    };
    let trace = Arc::new(
        azure
            .generate(&mut DeterministicRng::seeded(6))
            .expect("valid"),
    );
    let run = |keepalive| {
        Experiment::builder(PlatformKind::DscsDsa)
            .trace(trace.clone())
            .keepalive(keepalive)
            .seed(3)
            .build()
            .expect("valid experiment")
            .run()
            .report
    };
    let none = run(KeepalivePolicy::NoKeepalive);
    let fixed = run(KeepalivePolicy::paper_default());
    let hybrid = run(KeepalivePolicy::hybrid_default());
    assert!(
        none.cold_starts > fixed.cold_starts,
        "none {} vs fixed {}",
        none.cold_starts,
        fixed.cold_starts
    );
    assert!(
        hybrid.cold_starts <= none.cold_starts,
        "hybrid {} vs none {}",
        hybrid.cold_starts,
        none.cold_starts
    );
    assert!(none.mean_latency_ms() > fixed.mean_latency_ms());
}

#[test]
fn workload_validation_errors_are_typed_and_displayable() {
    let bad = AzureWorkload {
        base_rps: -1.0,
        ..AzureWorkload::default()
    };
    let err = bad
        .generate(&mut DeterministicRng::seeded(1))
        .expect_err("negative rate must be rejected");
    assert!(matches!(err, WorkloadError::InvalidRate { .. }));
    assert!(err.to_string().contains("invalid rate"));
}
