//! Satellite suite for the experiment-builder API redesign: every input
//! that used to panic inside `run_sharded_with_data` /
//! `ScalingPolicy::validate` now yields the matching typed [`ConfigError`]
//! from `ExperimentBuilder::build`, and the deprecated shims still panic
//! with their historical messages (so legacy callers see no behaviour
//! change). The workload-spec redesign extends the matrix: rejected
//! [`WorkloadSpec`]s fold into `ConfigError::WorkloadSpec` with their typed
//! source preserved, and the deprecated `workload(&W, rng)` shim stays
//! bit-identical to `workload_spec`.
//!
//! [`WorkloadSpec`]: dscs_serverless::cluster::workload::WorkloadSpec

use dscs_serverless::cluster::data::DataLayer;
use dscs_serverless::cluster::experiment::{ConfigError, Experiment};
use dscs_serverless::cluster::policy::{LoadBalancer, ScalingPolicy};
use dscs_serverless::cluster::sim::{ClusterConfig, ClusterSim};
use dscs_serverless::cluster::trace::{RateProfile, TraceRequest};
use dscs_serverless::platforms::PlatformKind;
use dscs_serverless::simcore::rng::DeterministicRng;
use dscs_serverless::simcore::time::SimDuration;

fn short_trace(seed: u64) -> Vec<TraceRequest> {
    let profile = RateProfile {
        segments: vec![(SimDuration::from_secs(4), 60.0)],
    };
    profile.generate(&mut DeterministicRng::seeded(seed))
}

/// Every formerly-panicking input class maps to its own `ConfigError`
/// variant, and the builder reports the *first* violation in the historical
/// check order.
#[test]
fn every_formerly_panicking_input_yields_the_matching_typed_error() {
    // 1. Empty trace (and the no-trace-at-all case).
    assert_eq!(
        Experiment::builder(PlatformKind::DscsDsa)
            .trace(Vec::new())
            .build()
            .expect_err("empty trace"),
        ConfigError::EmptyTrace
    );
    assert_eq!(
        Experiment::builder(PlatformKind::DscsDsa)
            .build()
            .expect_err("missing trace"),
        ConfigError::EmptyTrace
    );

    // 2. Zero racks.
    assert_eq!(
        Experiment::builder(PlatformKind::DscsDsa)
            .trace(short_trace(1))
            .racks(0)
            .build()
            .expect_err("zero racks"),
        ConfigError::ZeroRacks
    );

    // 3. Data layer built for a different rack count.
    let trace = short_trace(2);
    let data = DataLayer::for_trace(&trace, 4, 9);
    assert_eq!(
        Experiment::builder(PlatformKind::DscsDsa)
            .trace(trace)
            .racks(2)
            .data_layer(data)
            .build()
            .expect_err("mismatched data layer"),
        ConfigError::DataLayerRackMismatch {
            layer_racks: 4,
            racks: 2
        }
    );

    // 4. Elastic pool with zero min_instances.
    assert_eq!(
        Experiment::builder(PlatformKind::DscsDsa)
            .trace(short_trace(3))
            .scaling(ScalingPolicy::reactive_default())
            .instances(0, 200)
            .build()
            .expect_err("zero min"),
        ConfigError::ZeroMinInstances
    );

    // 5. min_instances above max_instances.
    assert_eq!(
        Experiment::builder(PlatformKind::DscsDsa)
            .trace(short_trace(4))
            .scaling(ScalingPolicy::predictive_default())
            .instances(128, 16)
            .build()
            .expect_err("min above max"),
        ConfigError::MinAboveMax { min: 128, max: 16 }
    );
}

/// The scaling-parameter violations the old `ScalingPolicy::validate`
/// asserted also surface as typed errors, both from `check()` and through
/// the builder.
#[test]
fn scaling_parameter_violations_are_typed_errors() {
    let zero_reactive = ScalingPolicy::Reactive {
        scale_up_queue: 8,
        scale_down_queue: 2,
        step: 4,
        interval: SimDuration::ZERO,
    };
    assert_eq!(
        zero_reactive.check().expect_err("zero interval"),
        ConfigError::ZeroScalingInterval { policy: "reactive" }
    );
    let zero_predictive = ScalingPolicy::Predictive {
        interval: SimDuration::ZERO,
        headroom: 1.5,
    };
    assert_eq!(
        zero_predictive.check().expect_err("zero interval"),
        ConfigError::ZeroScalingInterval {
            policy: "predictive"
        }
    );
    let zero_step = ScalingPolicy::Reactive {
        scale_up_queue: 8,
        scale_down_queue: 2,
        step: 0,
        interval: SimDuration::from_secs(5),
    };
    assert_eq!(
        zero_step.check().expect_err("zero step"),
        ConfigError::ZeroReactiveStep
    );
    let overlapping = ScalingPolicy::Reactive {
        scale_up_queue: 4,
        scale_down_queue: 4,
        step: 4,
        interval: SimDuration::from_secs(5),
    };
    assert_eq!(
        overlapping.check().expect_err("overlap"),
        ConfigError::OverlappingReactiveThresholds {
            scale_up_queue: 4,
            scale_down_queue: 4
        }
    );
    for headroom in [0.99, f64::NAN, f64::INFINITY] {
        let policy = ScalingPolicy::Predictive {
            interval: SimDuration::from_secs(5),
            headroom,
        };
        assert!(matches!(
            policy.check().expect_err("bad headroom"),
            ConfigError::InvalidPredictiveHeadroom { .. }
        ));
        // The same violation through the builder (scaling checked before the
        // elastic bounds).
        let err = Experiment::builder(PlatformKind::DscsDsa)
            .trace(short_trace(5))
            .scaling(policy)
            .build()
            .expect_err("builder relays the scaling error");
        assert!(matches!(err, ConfigError::InvalidPredictiveHeadroom { .. }));
    }
}

/// `ConfigError` is a real `std::error::Error`: displayable, and the
/// workload variant exposes its source. (The `workload` shim is deprecated
/// in favour of `workload_spec`, but its error path stays covered.)
#[test]
#[allow(deprecated)]
fn config_errors_display_and_expose_sources() {
    use dscs_serverless::cluster::workload::AzureWorkload;
    use std::error::Error;

    let bad = AzureWorkload {
        base_rps: f64::NAN,
        ..AzureWorkload::default()
    };
    let err = Experiment::builder(PlatformKind::DscsDsa)
        .workload(&bad, &mut DeterministicRng::seeded(1))
        .build()
        .expect_err("invalid workload");
    assert!(matches!(err, ConfigError::Workload(_)));
    assert!(err.source().is_some(), "workload errors carry their source");
    assert!(!err.to_string().is_empty());
    assert!(
        ConfigError::ZeroRacks.source().is_none(),
        "leaf errors have no source"
    );
}

/// Every way a declarative `WorkloadSpec` can be rejected maps to its own
/// typed `WorkloadSpecError`, and the build-time ones fold into
/// `ConfigError::WorkloadSpec` with the source chain intact.
#[test]
fn rejected_workload_specs_fold_into_config_errors() {
    use dscs_serverless::cluster::at_scale::SweepScale;
    use dscs_serverless::cluster::ingest::IngestError;
    use dscs_serverless::cluster::workload::{WorkloadSpec, WorkloadSpecError};
    use std::error::Error;
    use std::sync::Arc;

    // Parse-time rejections: unknown kind, malformed day.
    assert_eq!(
        WorkloadSpec::parse("tide", SweepScale::Smoke, 1).expect_err("unknown kind"),
        WorkloadSpecError::UnknownKind {
            kind: "tide".into()
        }
    );
    assert_eq!(
        WorkloadSpec::parse("trace:f.csv@zero", SweepScale::Smoke, 1).expect_err("bad day"),
        WorkloadSpecError::InvalidDay {
            value: "zero".into()
        }
    );

    // Build-time rejection: a missing trace file surfaces as a typed ingest
    // error wrapped in `ConfigError::WorkloadSpec`, source chain intact.
    let missing = WorkloadSpec::TraceFile {
        path: "/nonexistent/trace.csv".into(),
        day: 1,
    };
    let err = Experiment::builder(PlatformKind::DscsDsa)
        .workload_spec(&missing)
        .build()
        .expect_err("missing trace file");
    assert!(matches!(
        err,
        ConfigError::WorkloadSpec(WorkloadSpecError::Ingest(IngestError::Io { .. }))
    ));
    assert!(err.source().is_some(), "spec errors chain their source");
    assert!(err.to_string().contains("workload spec rejected"));

    // An inline spec with no requests is its own variant.
    let empty = WorkloadSpec::Inline {
        name: "empty".into(),
        source: "synthetic".into(),
        horizon_s: 1.0,
        trace: Arc::new(Vec::new()),
    };
    assert_eq!(
        Experiment::builder(PlatformKind::DscsDsa)
            .workload_spec(&empty)
            .build()
            .expect_err("empty inline trace"),
        ConfigError::WorkloadSpec(WorkloadSpecError::EmptyInline)
    );
}

/// Pinned shim equivalence (the PR-5 pattern): the deprecated
/// `workload(&W, rng)` entry point fed the sweep's azure generation stream
/// builds a bit-identical experiment to the declarative
/// `workload_spec(WorkloadSpec::Azure { .. })`.
#[test]
#[allow(deprecated)]
fn deprecated_workload_shim_and_workload_spec_agree() {
    use dscs_serverless::cluster::at_scale::SweepScale;
    use dscs_serverless::cluster::workload::{azure_generation_rng, WorkloadSpec};

    let seed = 29;
    let via_shim = Experiment::builder(PlatformKind::DscsDsa)
        .workload(
            &WorkloadSpec::azure_at(SweepScale::Smoke),
            &mut azure_generation_rng(seed),
        )
        .build()
        .expect("the smoke azure workload is valid");
    let via_spec = Experiment::builder(PlatformKind::DscsDsa)
        .workload_spec(&WorkloadSpec::Azure {
            scale: SweepScale::Smoke,
            seed,
        })
        .build()
        .expect("the declarative spec realizes");
    assert_eq!(via_shim.trace(), via_spec.trace(), "bit-identical traces");
}

// --- Deprecated-shim behaviour: the old messages, verbatim. -----------------

#[test]
#[should_panic(expected = "trace must not be empty")]
#[allow(deprecated)]
fn deprecated_run_sharded_still_panics_on_an_empty_trace() {
    let sim = ClusterSim::new(PlatformKind::DscsDsa, ClusterConfig::default());
    let _ = sim.run_sharded(&[], 1, 1, LoadBalancer::RoundRobin);
}

#[test]
#[should_panic(expected = "need at least one rack")]
#[allow(deprecated)]
fn deprecated_run_sharded_still_panics_on_zero_racks() {
    let sim = ClusterSim::new(PlatformKind::DscsDsa, ClusterConfig::default());
    let _ = sim.run_sharded(&short_trace(6), 1, 0, LoadBalancer::RoundRobin);
}

#[test]
#[should_panic(expected = "data layer must cover exactly the sharded racks")]
#[allow(deprecated)]
fn deprecated_run_sharded_with_data_still_panics_on_a_rack_mismatch() {
    let trace = short_trace(7);
    let data = DataLayer::for_trace(&trace, 3, 1);
    let sim = ClusterSim::new(PlatformKind::DscsDsa, ClusterConfig::default());
    let _ = sim.run_sharded_with_data(&trace, 1, 2, LoadBalancer::RoundRobin, Some(&data));
}

#[test]
#[should_panic(expected = "elastic racks need at least one instance")]
#[allow(deprecated)]
fn deprecated_run_sharded_still_panics_on_a_zero_min_elastic_pool() {
    let config = ClusterConfig {
        scaling: ScalingPolicy::reactive_default(),
        min_instances: 0,
        ..ClusterConfig::default()
    };
    let sim = ClusterSim::new(PlatformKind::DscsDsa, config);
    let _ = sim.run_sharded(&short_trace(8), 1, 1, LoadBalancer::RoundRobin);
}

#[test]
#[should_panic(expected = "min_instances must not exceed max_instances")]
#[allow(deprecated)]
fn deprecated_run_sharded_still_panics_when_min_exceeds_max() {
    let config = ClusterConfig {
        scaling: ScalingPolicy::predictive_default(),
        min_instances: 300,
        max_instances: 200,
        ..ClusterConfig::default()
    };
    let sim = ClusterSim::new(PlatformKind::DscsDsa, config);
    let _ = sim.run_sharded(&short_trace(9), 1, 1, LoadBalancer::RoundRobin);
}

#[test]
#[should_panic(expected = "reactive interval must be non-zero")]
#[allow(deprecated)]
fn deprecated_scaling_validate_still_panics_with_the_old_message() {
    ScalingPolicy::Reactive {
        scale_up_queue: 8,
        scale_down_queue: 2,
        step: 4,
        interval: SimDuration::ZERO,
    }
    .validate();
}

/// A valid configuration behaves identically through the deprecated shim and
/// the builder — the shim really is a thin delegation.
#[test]
#[allow(deprecated)]
fn deprecated_shim_and_builder_agree_on_valid_runs() {
    let trace = short_trace(10);
    let sim = ClusterSim::new(PlatformKind::DscsDsa, ClusterConfig::default());
    let (report, racks) = sim.run_sharded(&trace, 5, 2, LoadBalancer::LeastLoaded);
    let outcome = Experiment::builder(PlatformKind::DscsDsa)
        .trace(trace)
        .racks(2)
        .balancer(LoadBalancer::LeastLoaded)
        .seed(5)
        .build()
        .expect("valid experiment")
        .run();
    assert_eq!(report, outcome.report, "bit-identical aggregate reports");
    assert_eq!(racks, outcome.racks, "bit-identical per-rack summaries");
}
