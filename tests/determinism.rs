//! Determinism regression tests: the at-scale simulation is a pure function
//! of its seed. Two runs with the same [`DeterministicRng`] seed must produce
//! bit-identical latency series; different seeds must not. All runs go
//! through the typed `Experiment` builder — the one entry point to cluster
//! runs.

use std::sync::Arc;

use dscs_serverless::cluster::experiment::Experiment;
use dscs_serverless::cluster::trace::RateProfile;
use dscs_serverless::platforms::PlatformKind;
use dscs_serverless::simcore::rng::DeterministicRng;
use dscs_serverless::simcore::time::SimDuration;

fn one_minute_trace(seed: u64) -> Vec<dscs_serverless::cluster::trace::TraceRequest> {
    let profile = RateProfile {
        segments: vec![
            (SimDuration::from_secs(30), 900.0),
            (SimDuration::from_secs(30), 1500.0),
        ],
    };
    profile.generate(&mut DeterministicRng::seeded(seed))
}

#[test]
fn same_seed_produces_bit_identical_latency_series() {
    let trace = Arc::new(one_minute_trace(11));
    for platform in [PlatformKind::BaselineCpu, PlatformKind::DscsDsa] {
        let run = || {
            Experiment::builder(platform)
                .trace(trace.clone())
                .seed(77)
                .build()
                .expect("valid experiment")
                .run()
                .report
        };
        let a = run();
        let b = run();
        // Exact f64 equality on every bucketed series — any nondeterminism
        // (iteration order, uncached RNG draws) shows up here immediately.
        assert_eq!(a.latency_ms, b.latency_ms, "{platform:?} latency series");
        assert_eq!(a.queued, b.queued, "{platform:?} queue series");
        assert_eq!(a.offered_rps, b.offered_rps, "{platform:?} offered load");
        assert_eq!(a.completed, b.completed, "{platform:?} completed");
        assert_eq!(a.rejected, b.rejected, "{platform:?} rejected");
        let (sa, sb) = (
            a.latency_summary.expect("ran"),
            b.latency_summary.expect("ran"),
        );
        assert_eq!(sa.p50().to_bits(), sb.p50().to_bits(), "{platform:?} p50");
        assert_eq!(sa.p99().to_bits(), sb.p99().to_bits(), "{platform:?} p99");
    }
}

#[test]
fn different_seeds_produce_different_latency_series() {
    let trace = Arc::new(one_minute_trace(11));
    let run = |seed| {
        Experiment::builder(PlatformKind::DscsDsa)
            .trace(trace.clone())
            .seed(seed)
            .build()
            .expect("valid experiment")
            .run()
            .report
    };
    let a = run(77);
    let b = run(78);
    assert_ne!(
        a.latency_ms, b.latency_ms,
        "independent seeds must perturb the service-time jitter"
    );
}

#[test]
fn same_seed_produces_bit_identical_multi_rack_runs() {
    use dscs_serverless::cluster::policy::{LoadBalancer, SchedulerPolicy};
    use dscs_serverless::cluster::sim::{ClusterConfig, ClusterSim};

    let trace = Arc::new(one_minute_trace(11));
    let sim = ClusterSim::new(PlatformKind::DscsDsa, ClusterConfig::default());
    for balancer in LoadBalancer::ALL {
        let run = || {
            Experiment::builder(PlatformKind::DscsDsa)
                .trace(trace.clone())
                .scheduler(SchedulerPolicy::ShortestJobFirst)
                .racks(4)
                .balancer(balancer)
                .seed(33)
                .build()
                .expect("valid experiment")
                .run_on(&sim)
        };
        let a = run();
        let b = run();
        assert_eq!(
            a.report.latency_ms, b.report.latency_ms,
            "{balancer:?} latency series"
        );
        assert_eq!(
            a.report.cold_starts, b.report.cold_starts,
            "{balancer:?} cold starts"
        );
        assert_eq!(a.racks, b.racks, "{balancer:?} per-rack summaries");
        assert_eq!(a.report.completed + a.report.rejected, trace.len() as u64);
    }
}

#[test]
fn same_seed_produces_bit_identical_autoscaled_runs() {
    use dscs_serverless::cluster::policy::{KeepalivePolicy, LoadBalancer, ScalingPolicy};

    let trace = Arc::new(one_minute_trace(11));
    for scaling in [
        ScalingPolicy::reactive_default(),
        ScalingPolicy::predictive_default(),
    ] {
        let run = || {
            Experiment::builder(PlatformKind::DscsDsa)
                .trace(trace.clone())
                .scaling(scaling)
                .keepalive(KeepalivePolicy::prewarm_default())
                .racks(3)
                .balancer(LoadBalancer::LeastLoaded)
                .seed(55)
                .build()
                .expect("valid experiment")
                .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.report, b.report, "{scaling:?} aggregate report");
        assert_eq!(a.racks, b.racks, "{scaling:?} per-rack summaries");
        assert_eq!(
            a.report.scaling_lag_s.to_bits(),
            b.report.scaling_lag_s.to_bits(),
            "{scaling:?} lag"
        );
        assert_eq!(
            a.report.warm_seconds.to_bits(),
            b.report.warm_seconds.to_bits(),
            "{scaling:?} warm-seconds accumulate in a fixed order"
        );
    }
}

/// Satellite regression test: sharded runs under the data-locality-aware
/// balancer — replica-rack dispatch, spill decisions and cross-rack fetch
/// charges (latency and joules) included — are bit-identical across repeated
/// runs.
#[test]
fn same_seed_produces_bit_identical_locality_aware_runs() {
    use dscs_serverless::cluster::data::DataLayer;
    use dscs_serverless::cluster::policy::LoadBalancer;
    use dscs_serverless::cluster::sim::{ClusterConfig, ClusterSim};

    let trace = Arc::new(one_minute_trace(11));
    let racks = 3;
    let data = Arc::new(DataLayer::for_trace(&trace, racks, 61));
    let sim = ClusterSim::new(PlatformKind::DscsDsa, ClusterConfig::default());
    for balancer in [
        LoadBalancer::locality_default(),
        LoadBalancer::LocalityAware { spill_threshold: 0 },
        LoadBalancer::LocalityAware {
            spill_threshold: usize::MAX,
        },
    ] {
        let run = |data: Arc<DataLayer>| {
            Experiment::builder(PlatformKind::DscsDsa)
                .trace(trace.clone())
                .racks(racks)
                .balancer(balancer)
                .data_layer(data)
                .seed(33)
                .build()
                .expect("valid experiment")
                .run_on(&sim)
        };
        let a = run(data.clone());
        let b = run(data.clone());
        assert_eq!(a.report, b.report, "{balancer:?} aggregate report");
        assert_eq!(a.racks, b.racks, "{balancer:?} per-rack summaries");
        assert_eq!(
            a.report.fetch_latency_s.to_bits(),
            b.report.fetch_latency_s.to_bits(),
            "{balancer:?} fetch charges accumulate in a fixed order"
        );
        assert_eq!(
            a.report.fetch_energy_j.to_bits(),
            b.report.fetch_energy_j.to_bits(),
            "{balancer:?} fetch energy accumulates in a fixed order"
        );
        // A freshly rebuilt data layer must not perturb the run either.
        let rebuilt = Arc::new(DataLayer::for_trace(&trace, racks, 61));
        let c = run(rebuilt);
        assert_eq!(
            a.report, c.report,
            "{balancer:?} placement is a pure function of seed"
        );
    }
}

/// The full sweep — which now includes the scaling axes, the prewarm
/// keepalive, the balancer axis with its locality fields and the v4 fetch
/// energy — renders byte-identical JSON across two runs with the same seed.
#[test]
fn at_scale_report_json_is_byte_identical_across_runs() {
    use dscs_serverless::cluster::at_scale::{at_scale_sweep, AtScaleOptions};

    let a = at_scale_sweep(AtScaleOptions::smoke()).to_json();
    let b = at_scale_sweep(AtScaleOptions::smoke()).to_json();
    assert_eq!(a, b);
    assert!(a.contains("\"scaling\":\"reactive\""));
    assert!(a.contains("\"scaling\":\"predictive\""));
    assert!(a.contains("\"balancer\":\"locality\""));
    assert!(a.contains("\"locality_hit_rate\""));
    assert!(a.contains("\"fetch_energy_j\""));
}

#[test]
fn same_seed_produces_bit_identical_traces() {
    let t1 = one_minute_trace(42);
    let t2 = one_minute_trace(42);
    assert_eq!(t1.len(), t2.len());
    for (a, b) in t1.iter().zip(&t2) {
        assert_eq!(a.arrival.as_nanos(), b.arrival.as_nanos());
    }
    let t3 = one_minute_trace(43);
    assert_ne!(
        t1.len(),
        t3.len(),
        "different trace seeds should differ in arrivals"
    );
}

#[test]
fn the_offline_optimal_bound_is_bit_identical_across_calls_and_sims() {
    use dscs_serverless::cluster::optimal::optimal_coldstart_seconds;
    use dscs_serverless::cluster::sim::{ClusterConfig, ClusterSim};

    let trace = one_minute_trace(11);
    for platform in [PlatformKind::BaselineCpu, PlatformKind::DscsDsa] {
        // Two independently constructed simulators price cold starts from the
        // same platform model, so the bound — a pure function of (trace,
        // pricing) — must agree to the last bit across calls and instances.
        let sim_a = ClusterSim::new(platform, ClusterConfig::default());
        let sim_b = ClusterSim::new(platform, ClusterConfig::default());
        let first = optimal_coldstart_seconds(&trace, &sim_a);
        assert!(first > 0.0 && first.is_finite(), "{platform:?} bound");
        for bound in [
            optimal_coldstart_seconds(&trace, &sim_a),
            optimal_coldstart_seconds(&trace, &sim_b),
        ] {
            assert_eq!(
                first.to_bits(),
                bound.to_bits(),
                "{platform:?} bound must be bit-identical"
            );
        }
    }
}
