//! Integration tests spanning the whole workspace: the headline claims of the
//! paper, and the cross-crate flows (deployment config → registry → data
//! placement → scheduling → end-to-end evaluation → at-scale simulation).

use dscs_serverless::cluster::experiment::Experiment;
use dscs_serverless::cluster::trace::RateProfile;
use dscs_serverless::compiler::compile_model;
use dscs_serverless::core::benchmarks::Benchmark;
use dscs_serverless::core::endtoend::{EvalOptions, SystemModel};
use dscs_serverless::core::experiments;
use dscs_serverless::dsa::config::DsaConfig;
use dscs_serverless::dsa::executor::Executor;
use dscs_serverless::dse::explore::{evaluate_config, DRIVE_POWER_BUDGET_WATTS};
use dscs_serverless::faas::config::parse_deployment;
use dscs_serverless::faas::registry::FunctionRegistry;
use dscs_serverless::faas::scheduler::{NodeCapability, NodeId, PendingRequest, Scheduler};
use dscs_serverless::nn::zoo::{Model, ModelKind};
use dscs_serverless::platforms::PlatformKind;
use dscs_serverless::simcore::rng::DeterministicRng;
use dscs_serverless::simcore::stats::geometric_mean;
use dscs_serverless::simcore::time::SimDuration;
use dscs_serverless::storage::object_store::ObjectStore;

fn geomean_speedup(platform: PlatformKind, baseline: PlatformKind) -> f64 {
    let sys = SystemModel::new();
    let ratios: Vec<f64> = Benchmark::ALL
        .iter()
        .map(|&b| sys.speedup_over(b, platform, baseline, EvalOptions::default()))
        .collect();
    geometric_mean(&ratios)
}

fn geomean_energy_reduction(platform: PlatformKind, baseline: PlatformKind) -> f64 {
    let sys = SystemModel::new();
    let ratios: Vec<f64> = Benchmark::ALL
        .iter()
        .map(|&b| {
            let base = sys
                .evaluate(b, baseline, EvalOptions::default())
                .total_energy()
                .as_f64();
            let this = sys
                .evaluate(b, platform, EvalOptions::default())
                .total_energy()
                .as_f64();
            base / this
        })
        .collect();
    geometric_mean(&ratios)
}

#[test]
fn headline_dscs_beats_the_cpu_baseline() {
    // Paper: 3.6x speedup, 3.5x energy reduction over the CPU baseline.
    let speedup = geomean_speedup(PlatformKind::DscsDsa, PlatformKind::BaselineCpu);
    let energy = geomean_energy_reduction(PlatformKind::DscsDsa, PlatformKind::BaselineCpu);
    assert!((2.0..6.0).contains(&speedup), "speedup {speedup}");
    assert!((2.0..7.0).contains(&energy), "energy reduction {energy}");
}

#[test]
fn headline_dscs_beats_the_gpu_with_remote_storage() {
    // Paper: 2.7x speedup and 4.2x energy reduction vs. the RTX 2080 Ti.
    let speedup = geomean_speedup(PlatformKind::DscsDsa, PlatformKind::RemoteGpu);
    let energy = geomean_energy_reduction(PlatformKind::DscsDsa, PlatformKind::RemoteGpu);
    assert!(speedup > 1.5, "speedup over GPU {speedup}");
    assert!(energy > 2.0, "energy reduction over GPU {energy}");
}

#[test]
fn headline_dscs_beats_conventional_computational_storage() {
    // Paper: 3.7x over NS-ARM and 1.7x over NS-FPGA end to end.
    let over_arm = geomean_speedup(PlatformKind::DscsDsa, PlatformKind::NsArm);
    let over_fpga = geomean_speedup(PlatformKind::DscsDsa, PlatformKind::NsFpga);
    assert!(over_arm > 2.0, "speedup over NS-ARM {over_arm}");
    assert!(
        (1.05..3.0).contains(&over_fpga),
        "speedup over NS-FPGA {over_fpga}"
    );
    assert!(over_arm > over_fpga, "the ARM cores should trail the FPGA");
}

#[test]
fn amdahls_law_caps_compute_only_acceleration_on_the_baseline() {
    // Figure 4's argument: with remote storage, even an infinitely fast
    // accelerator cannot beat ~1.5-2.5x because communication dominates.
    let sys = SystemModel::new();
    let fractions: Vec<f64> = Benchmark::ALL
        .iter()
        .map(|&b| {
            let report = sys.evaluate(b, PlatformKind::BaselineCpu, EvalOptions::default());
            let compute = report.latency.compute.as_secs_f64();
            let total = report.total_latency().as_secs_f64();
            compute / total
        })
        .collect();
    let mean_compute_share = fractions.iter().sum::<f64>() / fractions.len() as f64;
    let max_speedup = 1.0 / (1.0 - mean_compute_share);
    assert!(max_speedup < 2.5, "max compute-only speedup {max_speedup}");
}

#[test]
fn full_stack_flow_from_yaml_to_placement_to_latency() {
    // Deployment config -> registry -> object placement -> scheduling -> latency.
    let yaml = "app: ppe-detection\nfunctions:\n  - name: pre\n    role: preprocess\n    acceleratable: true\n  - name: infer\n    role: inference\n    acceleratable: true\n    image_mb: 300\n  - name: notify\n    role: notification\n";
    let pipeline = parse_deployment(yaml).expect("valid yaml");
    let mut registry = FunctionRegistry::new();
    registry.deploy(pipeline).expect("deploy");
    assert_eq!(
        registry
            .app("ppe-detection")
            .expect("deployed")
            .acceleratable_prefix_len(),
        2
    );

    let mut store = ObjectStore::with_node_counts(4, 2);
    let mut rng = DeterministicRng::seeded(3);
    store
        .put(
            "images/worker.jpg",
            Benchmark::PpeDetection.spec().input_size,
            true,
            &mut rng,
        )
        .expect("stored");
    let dscs_node = store
        .dscs_replica("images/worker.jpg")
        .expect("exists")
        .expect("on a DSCS drive");

    let mut scheduler = Scheduler::new(
        vec![
            (NodeId(0), NodeCapability::Compute),
            (NodeId(4), NodeCapability::DscsStorage),
            (NodeId(5), NodeCapability::DscsStorage),
        ],
        100,
    );
    scheduler
        .submit(PendingRequest {
            id: 1,
            app: "ppe-detection".to_string(),
            acceleratable: true,
            data_node: Some(NodeId(4 + (dscs_node.0 % 2))),
        })
        .expect("submitted");
    let placed = scheduler.dispatch();
    assert!(
        placed[0].1.uses_dsa(),
        "acceleratable request lands on the DSCS drive"
    );

    let sys = SystemModel::new();
    let report = sys.evaluate(
        Benchmark::PpeDetection,
        PlatformKind::DscsDsa,
        EvalOptions::default(),
    );
    assert!(
        report.total_latency().as_millis_f64() < 150.0,
        "DSCS end-to-end {:?}",
        report.total_latency()
    );
}

#[test]
fn dsa_compile_and_execute_for_every_benchmark_model() {
    let config = DsaConfig::paper_optimal();
    let executor = Executor::new(config);
    for kind in ModelKind::ALL {
        let model = Model::build(kind);
        let program = compile_model(&model, &config);
        let report = executor.run(&program);
        assert!(report.latency().as_millis_f64() > 0.0, "{kind}");
        assert!(
            report.average_power_watts() < DRIVE_POWER_BUDGET_WATTS,
            "{kind} draws {} W inside the drive",
            report.average_power_watts()
        );
    }
}

#[test]
fn chosen_dsa_configuration_fits_the_drive_power_budget() {
    let point = evaluate_config(
        DsaConfig::paper_optimal(),
        &[ModelKind::ResNet50, ModelKind::BertBase],
    );
    assert!(
        point.power_watts < DRIVE_POWER_BUDGET_WATTS,
        "provisioned power {}",
        point.power_watts
    );
    assert!(
        point.throughput_ips > 50.0,
        "throughput {}",
        point.throughput_ips
    );
}

#[test]
fn at_scale_simulation_preserves_the_figure_13_shape() {
    let profile = RateProfile {
        segments: vec![
            (SimDuration::from_secs(30), 1200.0),
            (SimDuration::from_secs(30), 2200.0),
            (SimDuration::from_secs(30), 1200.0),
        ],
    };
    let trace = std::sync::Arc::new(profile.generate(&mut DeterministicRng::seeded(21)));
    let run = |platform| {
        Experiment::builder(platform)
            .trace(trace.clone())
            .seed(22)
            .build()
            .expect("valid experiment")
            .run()
            .report
    };
    let baseline = run(PlatformKind::BaselineCpu);
    let dscs = run(PlatformKind::DscsDsa);
    assert!(
        baseline.peak_queue() > dscs.peak_queue(),
        "baseline queues more"
    );
    assert!(
        baseline.mean_latency_ms() > dscs.mean_latency_ms(),
        "baseline is slower at scale"
    );
    assert_eq!(dscs.completed + dscs.rejected, trace.len() as u64);
}

#[test]
fn experiment_runners_cover_every_table_and_figure_in_scope() {
    assert_eq!(experiments::table1_benchmarks().len(), 8);
    assert_eq!(experiments::table2_platforms().len(), 7);
    assert_eq!(experiments::fig3_s3_read_cdf(500, 1).len(), 8);
    assert_eq!(experiments::fig4_runtime_breakdown_baseline().len(), 8);
    assert_eq!(experiments::fig9_speedup().cells.len(), 48);
    assert_eq!(experiments::fig10_runtime_breakdown().len(), 56);
    assert_eq!(experiments::fig11_energy_reduction().cells.len(), 48);
    assert_eq!(experiments::fig14_batch_sensitivity().len(), 32);
    assert_eq!(experiments::fig15_tail_sensitivity().len(), 24);
    assert_eq!(experiments::fig16_function_count_sensitivity().len(), 32);
    assert_eq!(experiments::fig17_cold_start_sensitivity().len(), 16);
}
