//! Round-trip suite for trace-file ingestion: the checked-in Azure-schema
//! sample is pinned byte-for-byte against regeneration from the synthetic
//! generator, parsing it back yields the identical in-memory workload, and a
//! sweep fed the file through `WorkloadSpec::TraceFile` writes byte-identical
//! JSON to one fed the same requests inline. CLI spec strings
//! (`azure`, `bursty`, `trace:<path>[@<day>]`) parse to the expected specs.

use std::sync::Arc;

use dscs_serverless::cluster::at_scale::{SweepScale, SweepSpec};
use dscs_serverless::cluster::ingest::{sample_workload, TraceFileWorkload};
use dscs_serverless::cluster::policy::{
    KeepalivePolicy, LoadBalancer, ScalingPolicy, SchedulerPolicy,
};
use dscs_serverless::cluster::workload::{azure_generation_rng, Workload, WorkloadSpec};
use dscs_serverless::platforms::PlatformKind;
use dscs_serverless::simcore::rng::DeterministicRng;

const SAMPLE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/data/azure_trace_sample.csv");

/// The checked-in sample is exactly `generate-trace --sample --seed 42`:
/// regenerating from the synthetic workload reproduces the file bytes, and
/// parsing the file back yields the identical in-memory workload — so
/// generate → parse → generate-again is a fixed point.
#[test]
fn checked_in_sample_is_a_generate_parse_fixed_point() {
    let on_disk = std::fs::read_to_string(SAMPLE_PATH).expect("the sample trace is checked in");
    let regenerated = TraceFileWorkload::from_workload(
        &sample_workload(),
        &mut azure_generation_rng(42),
        "azure_trace_sample.csv",
    )
    .expect("the sample workload is valid");
    assert_eq!(
        regenerated.to_csv(),
        on_disk,
        "data/azure_trace_sample.csv drifted from `generate-trace --sample --seed 42`; \
         regenerate it with the CLI"
    );

    let parsed = TraceFileWorkload::from_csv_path(SAMPLE_PATH, 1).expect("the sample trace parses");
    assert_eq!(parsed, regenerated, "parse inverts generation exactly");
    assert_eq!(parsed.to_csv(), on_disk, "re-emission is byte-identical");

    // Expanding either copy with the same RNG stream yields bit-equal traces.
    let a = parsed
        .generate(&mut DeterministicRng::seeded(9))
        .expect("valid");
    let b = regenerated
        .generate(&mut DeterministicRng::seeded(9))
        .expect("valid");
    assert_eq!(
        a, b,
        "expansion is a pure function of the file and the seed"
    );
    assert_eq!(a.len() as u64, parsed.invocations());
}

/// A sweep that ingests the sample through `WorkloadSpec::TraceFile` writes
/// byte-identical JSON to one handed the realized requests inline — the
/// file-backed path adds nothing nondeterministic.
#[test]
fn trace_file_and_inline_sweeps_write_identical_json() {
    let file_spec = WorkloadSpec::TraceFile {
        path: SAMPLE_PATH.into(),
        day: 1,
    };
    let realized = file_spec.realize().expect("the sample trace realizes");
    let inline_spec = WorkloadSpec::Inline {
        name: realized.name.clone(),
        source: realized.source.clone(),
        horizon_s: realized.horizon_s,
        trace: Arc::clone(&realized.trace),
    };

    let grid = |workload: WorkloadSpec| SweepSpec {
        platforms: vec![PlatformKind::DscsDsa],
        schedulers: vec![SchedulerPolicy::Fcfs],
        keepalives: vec![KeepalivePolicy::paper_default()],
        scalings: vec![ScalingPolicy::Fixed],
        balancers: vec![LoadBalancer::RoundRobin],
        workloads: vec![workload],
        jobs: 1,
        ..SweepSpec::default_grid(SweepScale::Smoke)
    };
    let from_file = grid(file_spec).run().expect("valid sweep").to_json();
    let from_inline = grid(inline_spec).run().expect("valid sweep").to_json();
    assert_eq!(from_file, from_inline, "byte-identical sweep reports");
    assert!(from_file.contains("\"workload_source\":\"trace-file:azure_trace_sample.csv\""));
}

/// The CLI `--workload` grammar round-trips into the declarative specs.
#[test]
fn cli_workload_strings_parse_to_declarative_specs() {
    let scale = SweepScale::Quick;
    assert_eq!(
        WorkloadSpec::parse("azure", scale, 7),
        Ok(WorkloadSpec::Azure { scale, seed: 7 })
    );
    assert_eq!(
        WorkloadSpec::parse("bursty", scale, 7),
        Ok(WorkloadSpec::Bursty { scale, seed: 7 })
    );
    assert_eq!(
        WorkloadSpec::parse("trace:data/azure_trace_sample.csv", scale, 7),
        Ok(WorkloadSpec::TraceFile {
            path: "data/azure_trace_sample.csv".into(),
            day: 1
        })
    );
    assert_eq!(
        WorkloadSpec::parse("trace:d.csv@3", scale, 7),
        Ok(WorkloadSpec::TraceFile {
            path: "d.csv".into(),
            day: 3
        })
    );
}
