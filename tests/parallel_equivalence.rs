//! Parallel-equivalence suite for the sweep engine: a `jobs = N` run must be
//! indistinguishable from the sequential `jobs = 1` run — byte-identical
//! JSON and equal cells — across seeds, scales and axis subsets, and
//! repeated parallel runs must be bit-stable. These tests pin the tentpole
//! guarantee that parallelism is a pure wall-clock optimisation: workers
//! only change *who* runs a cell, never *what* the cell computes or where
//! its result lands.
//!
//! Note the tests deliberately assert bytes, not speedup: wall-clock gains
//! depend on the host's core count (CI runners may expose a single core),
//! while the determinism contract must hold everywhere.

use std::sync::Arc;

use dscs_serverless::cluster::at_scale::{AtScaleOptions, SweepScale, SweepSpec};
use dscs_serverless::cluster::coldpath::{ColdStartPath, IpcTransport};
use dscs_serverless::cluster::experiment::{Experiment, Outcome};
use dscs_serverless::cluster::policy::{
    KeepalivePolicy, LoadBalancer, ScalingPolicy, SchedulerPolicy,
};
use dscs_serverless::cluster::trace::RateProfile;
use dscs_serverless::platforms::PlatformKind;
use dscs_serverless::simcore::rng::DeterministicRng;

/// A small smoke-scale grid (2 workloads x 1 platform x 1 scheduler x
/// 2 keepalives x 2 scalings x 2 balancers = 16 cells) so each test run
/// stays cheap while still spanning several axes.
fn small_grid(seed: u64, jobs: usize) -> SweepSpec {
    SweepSpec {
        seed,
        jobs,
        platforms: vec![PlatformKind::DscsDsa],
        schedulers: vec![SchedulerPolicy::Fcfs],
        keepalives: vec![
            KeepalivePolicy::paper_default(),
            KeepalivePolicy::prewarm_default(),
        ],
        scalings: vec![ScalingPolicy::Fixed, ScalingPolicy::reactive_default()],
        balancers: vec![LoadBalancer::RoundRobin, LoadBalancer::locality_default()],
        ..SweepSpec::default_grid(SweepScale::Smoke)
    }
}

#[test]
fn parallel_sweeps_render_sequential_bytes_across_seeds() {
    for seed in [42, 7, 0xDEAD] {
        let sequential = small_grid(seed, 1).run().expect("valid spec");
        let parallel = small_grid(seed, 4).run().expect("valid spec");
        assert_eq!(
            sequential.to_json(),
            parallel.to_json(),
            "seed {seed}: jobs=4 must render the sequential bytes"
        );
        // Beyond the rendering: the structured cells are equal too (the
        // measured wall_s fields compare equal by design).
        assert_eq!(sequential.cells, parallel.cells, "seed {seed}");
        assert_eq!(sequential.workloads, parallel.workloads, "seed {seed}");
        // The v7 regret fields are inside the determinism contract: both
        // runs carry them, bit-identical, and every cell stays a finite
        // non-negative distance above its offline bound.
        for (a, b) in sequential.cells.iter().zip(&parallel.cells) {
            assert_eq!(
                a.optimal_coldstart_s.to_bits(),
                b.optimal_coldstart_s.to_bits(),
                "seed {seed}"
            );
            assert_eq!(
                a.regret_pct.to_bits(),
                b.regret_pct.to_bits(),
                "seed {seed}"
            );
            assert!(
                a.regret_pct >= 0.0 && a.regret_pct.is_finite(),
                "seed {seed}"
            );
        }
    }
}

#[test]
fn parallel_sweeps_match_sequential_on_the_full_smoke_grid() {
    // The whole default smoke grid (432 cells), as CI's equivalence diff
    // runs it: auto worker count vs the sequential path.
    let sequential = SweepSpec::from(AtScaleOptions {
        jobs: 1,
        ..AtScaleOptions::smoke()
    })
    .run()
    .expect("valid options");
    let parallel = SweepSpec::from(AtScaleOptions {
        jobs: 0, // auto: one worker per available core
        ..AtScaleOptions::smoke()
    })
    .run()
    .expect("valid options");
    assert_eq!(sequential.to_json(), parallel.to_json());
    assert_eq!(sequential.cells.len(), 432);
}

#[test]
fn parallel_sweeps_match_sequential_across_axis_subsets() {
    let base = small_grid(42, 1);
    let subsets = [
        SweepSpec {
            balancers: vec![LoadBalancer::LeastLoaded],
            ..base.clone()
        },
        SweepSpec {
            platforms: vec![PlatformKind::BaselineCpu, PlatformKind::DscsDsa],
            scalings: vec![ScalingPolicy::predictive_default()],
            ..base.clone()
        },
        SweepSpec {
            schedulers: SchedulerPolicy::ALL.to_vec(),
            keepalives: vec![KeepalivePolicy::NoKeepalive],
            ..base.clone()
        },
    ];
    for (index, spec) in subsets.into_iter().enumerate() {
        let sequential = spec.run().expect("valid spec");
        let parallel = SweepSpec { jobs: 3, ..spec }.run().expect("valid spec");
        assert_eq!(
            sequential.to_json(),
            parallel.to_json(),
            "axis subset {index}"
        );
    }
}

#[test]
fn parallel_sweeps_match_sequential_at_quick_scale() {
    // One (platform, policy) point per workload keeps the longer quick-scale
    // traces affordable while proving the guarantee isn't smoke-specific.
    let spec = SweepSpec {
        platforms: vec![PlatformKind::DscsDsa],
        schedulers: vec![SchedulerPolicy::Fcfs],
        keepalives: vec![KeepalivePolicy::paper_default()],
        scalings: vec![ScalingPolicy::Fixed],
        balancers: vec![LoadBalancer::locality_default()],
        jobs: 1,
        ..SweepSpec::default_grid(SweepScale::Quick)
    };
    let sequential = spec.run().expect("valid spec");
    let parallel = SweepSpec {
        jobs: 2,
        ..spec.clone()
    }
    .run()
    .expect("valid spec");
    assert_eq!(sequential.to_json(), parallel.to_json());
    assert_eq!(sequential.cells.len(), 2);
}

#[test]
fn repeated_parallel_runs_are_bit_stable() {
    let run = || small_grid(11, 3).run().expect("valid spec");
    let a = run();
    let b = run();
    assert_eq!(a.to_json(), b.to_json(), "parallel runs must be bit-stable");
    assert_eq!(a.cells, b.cells);
    // The deterministic work counter is bit-stable too — only wall_s (a
    // measurement, excluded from equality and from to_json) may differ.
    assert_eq!(a.total_events(), b.total_events());
}

/// A round-robin grid spanning all three scaling policies, the surface the
/// rack-parallel engine must reproduce exactly: fixed pools, reactive ticks
/// and predictive ticks all schedule per-rack events whose order the
/// partitioned lanes must preserve.
fn rack_grid(seed: u64, rack_jobs: usize) -> SweepSpec {
    SweepSpec {
        seed,
        jobs: 1,
        rack_jobs,
        racks: 3,
        platforms: vec![PlatformKind::DscsDsa],
        schedulers: vec![SchedulerPolicy::Fcfs],
        keepalives: vec![KeepalivePolicy::prewarm_default()],
        scalings: vec![
            ScalingPolicy::Fixed,
            ScalingPolicy::reactive_default(),
            ScalingPolicy::predictive_default(),
        ],
        balancers: vec![LoadBalancer::RoundRobin],
        ..SweepSpec::default_grid(SweepScale::Smoke)
    }
}

#[test]
fn rack_parallel_runs_render_rack_sequential_bytes_across_seeds_and_scalings() {
    // The tentpole guarantee for the second parallelism level: sharding one
    // experiment's racks over threads never changes the report — across
    // seeds, every scaling policy, a pinned worker count and the auto (one
    // per core) setting.
    for seed in [42, 7, 0xBEEF] {
        let sequential = rack_grid(seed, 1).run().expect("valid spec");
        for rack_jobs in [2, 0] {
            let parallel = rack_grid(seed, rack_jobs).run().expect("valid spec");
            assert_eq!(
                sequential.to_json(),
                parallel.to_json(),
                "seed {seed}: rack_jobs={rack_jobs} must render the rack-sequential bytes"
            );
            assert_eq!(sequential.cells, parallel.cells, "seed {seed}");
            for (a, b) in sequential.cells.iter().zip(&parallel.cells) {
                assert_eq!(a.events, b.events, "seed {seed}");
                assert_eq!(
                    a.mean_latency_ms.to_bits(),
                    b.mean_latency_ms.to_bits(),
                    "seed {seed}: latency sketches must merge to identical bits"
                );
                assert_eq!(a.rack_completed, b.rack_completed, "seed {seed}");
            }
        }
    }
}

#[test]
fn rack_parallel_runs_are_bit_stable() {
    let run = || rack_grid(11, 3).run().expect("valid spec");
    let a = run();
    let b = run();
    assert_eq!(
        a.to_json(),
        b.to_json(),
        "rack-parallel runs must be bit-stable"
    );
    assert_eq!(a.cells, b.cells);
    assert_eq!(a.total_events(), b.total_events());
}

#[test]
fn both_parallelism_levels_compose_to_the_sequential_bytes() {
    // Sweep workers and rack workers at once — the full two-level fan-out —
    // against the all-sequential run.
    let sequential = rack_grid(42, 1).run().expect("valid spec");
    let composed = SweepSpec {
        jobs: 2,
        rack_jobs: 2,
        ..rack_grid(42, 1)
    }
    .run()
    .expect("valid spec");
    assert_eq!(sequential.to_json(), composed.to_json());
}

/// One small experiment per balancer, with rack workers requested.
fn outcome_for(balancer: LoadBalancer, rack_jobs: usize) -> Outcome {
    let profile = RateProfile::paper_bursty().compressed(100.0);
    let trace = Arc::new(profile.generate(&mut DeterministicRng::seeded(5)));
    Experiment::builder(PlatformKind::DscsDsa)
        .trace(trace)
        .racks(3)
        .balancer(balancer)
        .rack_jobs(rack_jobs)
        .seed(9)
        .build()
        .expect("valid experiment")
        .run()
}

#[test]
fn coupled_balancers_report_the_sequential_fallback_reason() {
    // Round-robin dispatch is decoupled, so it takes the rack-parallel
    // engine; the coupled balancers must fall back to the sequential engine
    // and say why.
    let round_robin = outcome_for(LoadBalancer::RoundRobin, 3);
    assert!(round_robin.engine.is_rack_parallel());
    assert_eq!(round_robin.engine.fallback_reason(), None);

    for balancer in [LoadBalancer::LeastLoaded, LoadBalancer::locality_default()] {
        let outcome = outcome_for(balancer, 3);
        assert!(
            !outcome.engine.is_rack_parallel(),
            "{}: coupled dispatch cannot shard racks",
            balancer.name()
        );
        let reason = outcome
            .engine
            .fallback_reason()
            .expect("coupled balancers must explain the sequential fallback");
        assert!(
            reason.contains("every rack"),
            "{}: reason should name the cross-rack coupling, got '{reason}'",
            balancer.name()
        );
        // The knob is inert on the sequential engine: same outcome with and
        // without rack workers requested.
        let inline = outcome_for(balancer, 1);
        assert_eq!(outcome.report, inline.report, "{}", balancer.name());
        assert_eq!(outcome.racks, inline.racks, "{}", balancer.name());
    }
}

#[test]
fn cold_path_and_ipc_axes_preserve_both_parallelism_equivalences() {
    // The modality axes charge at the same single site as the legacy
    // pricing, so sweeping them must leave both parallelism levels —
    // cell workers and rack lanes — byte-equivalent to the sequential run.
    let grid = |jobs: usize, rack_jobs: usize| SweepSpec {
        jobs,
        rack_jobs,
        racks: 3,
        platforms: vec![PlatformKind::DscsDsa],
        schedulers: vec![SchedulerPolicy::Fcfs],
        keepalives: vec![KeepalivePolicy::prewarm_default()],
        scalings: vec![ScalingPolicy::Fixed],
        balancers: vec![LoadBalancer::RoundRobin],
        cold_paths: ColdStartPath::ALL.to_vec(),
        ipcs: IpcTransport::ALL.to_vec(),
        ..SweepSpec::default_grid(SweepScale::Smoke)
    };
    let sequential = grid(1, 1).run().expect("valid spec");
    assert_eq!(
        sequential.cells.len(),
        2 * ColdStartPath::ALL.len() * IpcTransport::ALL.len(),
        "2 workloads x 3 cold paths x 3 transports"
    );
    let sweep_parallel = grid(4, 1).run().expect("valid spec");
    let rack_parallel = grid(1, 2).run().expect("valid spec");
    let composed = grid(3, 2).run().expect("valid spec");
    for (label, report) in [
        ("jobs=4", &sweep_parallel),
        ("rack_jobs=2", &rack_parallel),
        ("jobs=3 rack_jobs=2", &composed),
    ] {
        assert_eq!(sequential.to_json(), report.to_json(), "{label}");
        assert_eq!(sequential.cells, report.cells, "{label}");
        // The v8 modality fields are inside the determinism contract:
        // bit-identical across engines, tagged with the cell's own axis
        // values.
        for (a, b) in sequential.cells.iter().zip(&report.cells) {
            assert_eq!(a.cold_path, b.cold_path, "{label}");
            assert_eq!(a.ipc, b.ipc, "{label}");
            assert_eq!(a.restore_s.to_bits(), b.restore_s.to_bits(), "{label}");
            assert_eq!(
                a.ipc_overhead_s.to_bits(),
                b.ipc_overhead_s.to_bits(),
                "{label}"
            );
        }
    }
}

#[test]
fn more_workers_than_cells_is_harmless() {
    let spec = SweepSpec {
        platforms: vec![PlatformKind::DscsDsa],
        schedulers: vec![SchedulerPolicy::Fcfs],
        keepalives: vec![KeepalivePolicy::paper_default()],
        scalings: vec![ScalingPolicy::Fixed],
        balancers: vec![LoadBalancer::RoundRobin],
        jobs: 64, // grid has 2 cells
        ..SweepSpec::default_grid(SweepScale::Smoke)
    };
    let report = spec.run().expect("valid spec");
    assert_eq!(report.cells.len(), 2);
    let sequential = SweepSpec { jobs: 1, ..spec }.run().expect("valid spec");
    assert_eq!(report.to_json(), sequential.to_json());
}
