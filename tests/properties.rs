//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use dscs_serverless::compiler::{gemm_dims, select_tiling};
use dscs_serverless::dsa::config::{DsaConfig, MemoryKind, TechnologyNode};
use dscs_serverless::dsa::engine::MpuModel;
use dscs_serverless::nn::op::Operator;
use dscs_serverless::nn::tensor::DType;
use dscs_serverless::simcore::dist::{Distribution, LogNormalDist};
use dscs_serverless::simcore::fit::polyfit;
use dscs_serverless::simcore::pareto::{pareto_frontier, ParetoPoint};
use dscs_serverless::simcore::quantity::Bytes;
use dscs_serverless::simcore::rng::DeterministicRng;
use dscs_serverless::simcore::stats::Summary;
use dscs_serverless::simcore::time::SimDuration;
use dscs_serverless::storage::object_store::ObjectStore;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The Pareto frontier never contains a dominated point and never loses a
    /// non-dominated one.
    #[test]
    fn pareto_frontier_is_exactly_the_non_dominated_set(
        points in prop::collection::vec((0.1f64..100.0, 0.1f64..100.0), 1..60)
    ) {
        let candidates: Vec<ParetoPoint<usize>> = points
            .iter()
            .enumerate()
            .map(|(i, &(cost, benefit))| ParetoPoint::new(cost, benefit, i))
            .collect();
        let frontier = pareto_frontier(candidates.clone());
        for f in &frontier {
            prop_assert!(!candidates.iter().any(|c| c.dominates(f)), "frontier point dominated");
        }
        for c in &candidates {
            let dominated = candidates.iter().any(|other| other.dominates(c));
            let on_frontier = frontier.iter().any(|f| f.tag == c.tag);
            if !dominated && !on_frontier {
                // A non-dominated point may be dropped only if an identical
                // (cost, benefit) pair is already on the frontier.
                let duplicate = frontier.iter().any(|f| f.cost == c.cost && f.benefit == c.benefit);
                prop_assert!(duplicate, "non-dominated point missing from frontier");
            }
        }
    }

    /// Tiling always fits the double-buffered working set in the scratchpad
    /// and always covers the full GEMM.
    #[test]
    fn tiling_fits_and_covers(m in 1u64..5000, k in 1u64..5000, n in 1u64..5000) {
        let config = DsaConfig::paper_optimal();
        let tiling = select_tiling(&config, m, k, n);
        prop_assert!(tiling.buffer_bytes() <= config.buffer_bytes);
        prop_assert!(tiling.tile_m >= 1 && tiling.tile_k >= 1 && tiling.tile_n >= 1);
        prop_assert!(tiling.tile_count(m, k, n) >= 1);
    }

    /// Convolution lowering to implicit GEMM preserves the FLOP count exactly.
    #[test]
    fn conv_lowering_preserves_flops(
        batch in 1u64..4,
        in_channels in 1u64..128,
        out_channels in 1u64..128,
        size in 4u64..64,
        kernel in 1u64..5,
        stride in 1u64..3,
    ) {
        let op = Operator::Conv2d {
            batch,
            in_channels,
            out_channels,
            in_h: size,
            in_w: size,
            kernel,
            stride,
            dtype: DType::Int8,
        };
        let dims = gemm_dims(&op).expect("conv is GEMM-class");
        prop_assert_eq!(2 * dims.m * dims.k * dims.n, op.flops());
    }

    /// The systolic-array cycle count is monotone in each GEMM dimension.
    #[test]
    fn mpu_cycles_are_monotone(m in 1u64..512, k in 1u64..512, n in 1u64..512) {
        let mpu = MpuModel::new(&DsaConfig::paper_optimal());
        let base = mpu.gemm_cycles(m, k, n);
        prop_assert!(mpu.gemm_cycles(m + 1, k, n) >= base);
        prop_assert!(mpu.gemm_cycles(m, k + 1, n) >= base);
        prop_assert!(mpu.gemm_cycles(m, k, n + 1) >= base);
    }

    /// Summary quantiles are monotone in the quantile and bounded by min/max.
    #[test]
    fn summary_quantiles_are_monotone(values in prop::collection::vec(0.0f64..1e6, 1..200)) {
        let summary = Summary::from_samples(&values);
        let mut previous = summary.min();
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = summary.quantile(q);
            prop_assert!(v + 1e-9 >= previous, "quantiles must not decrease");
            prop_assert!(v >= summary.min() - 1e-9 && v <= summary.max() + 1e-9);
            previous = v;
        }
    }

    /// A calibrated lognormal reproduces its own median within sampling error.
    #[test]
    fn lognormal_calibration_roundtrips(median_ms in 1.0f64..100.0, tail_factor in 1.1f64..4.0) {
        let median = median_ms / 1e3;
        let dist = LogNormalDist::from_median_p99(median, median * tail_factor);
        let mut rng = DeterministicRng::seeded(9);
        let samples: Vec<f64> = (0..4_000).map(|_| dist.sample(&mut rng)).collect();
        let s = Summary::from_samples(&samples);
        prop_assert!((s.p50() - median).abs() / median < 0.15, "p50 {} vs median {}", s.p50(), median);
    }

    /// Cubic polynomial fits recover exact cubic data.
    #[test]
    fn polyfit_recovers_cubics(a in -2.0f64..2.0, b in -2.0f64..2.0, c in -0.5f64..0.5, d in -0.05f64..0.05) {
        let pts: Vec<(f64, f64)> = (0..24).map(|i| {
            let x = i as f64;
            (x, a + b * x + c * x * x + d * x * x * x)
        }).collect();
        let poly = polyfit(&pts, 3);
        for &(x, y) in &pts {
            let err = (poly.eval(x) - y).abs();
            prop_assert!(err < 1e-5 * (1.0 + y.abs()), "fit error {err} at {x}");
        }
    }

    /// Object-store placement always respects the replication factor and puts
    /// acceleratable objects on a DSCS drive.
    #[test]
    fn object_store_placement_invariants(objects in prop::collection::vec((1u64..32_000_000, any::<bool>()), 1..40), seed in 0u64..1000) {
        let mut store = ObjectStore::with_node_counts(5, 3);
        let mut rng = DeterministicRng::seeded(seed);
        for (i, &(size, acceleratable)) in objects.iter().enumerate() {
            let key = format!("obj-{i}");
            let meta = store.put(&key, Bytes::new(size), acceleratable, &mut rng).expect("store has DSCS nodes");
            prop_assert_eq!(meta.replicas.len(), 3);
            let mut unique = meta.replicas.clone();
            unique.sort_unstable();
            unique.dedup();
            prop_assert_eq!(unique.len(), 3, "replicas must be distinct");
            if acceleratable {
                prop_assert!(store.dscs_replica(&key).expect("exists").is_some());
            }
        }
    }

    /// Time arithmetic: converting seconds to a duration and back is stable to
    /// nanosecond rounding.
    #[test]
    fn duration_roundtrip(seconds in 0.0f64..10_000.0) {
        let d = SimDuration::from_secs_f64(seconds);
        prop_assert!((d.as_secs_f64() - seconds).abs() < 1e-9 * (1.0 + seconds));
    }

    /// DSA configurations in the sweep ranges always validate.
    #[test]
    fn dsa_configs_validate(dim_exp in 2u32..10, buffer_mib in 1u64..32) {
        let dim = 1u64 << dim_exp;
        let buffer = (buffer_mib * 1024 * 1024).max(6 * dim * dim);
        for memory in MemoryKind::ALL {
            let config = DsaConfig::square(dim, buffer, memory, TechnologyNode::Nm45);
            prop_assert!(config.validate().is_ok());
            prop_assert!(config.peak_ops_per_sec() > 0.0);
        }
    }
}
