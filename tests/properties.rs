//! Property-based tests over the core data structures and invariants.
//!
//! The build environment has no registry access, so instead of `proptest`
//! these run on a small in-file harness: each property is exercised over many
//! randomized cases drawn from a [`DeterministicRng`], with the failing case's
//! seed index reported on assertion failure so it can be replayed exactly.

use dscs_serverless::compiler::{gemm_dims, select_tiling};
use dscs_serverless::dsa::config::{DsaConfig, MemoryKind, TechnologyNode};
use dscs_serverless::dsa::engine::MpuModel;
use dscs_serverless::nn::op::Operator;
use dscs_serverless::nn::tensor::DType;
use dscs_serverless::simcore::dist::{Distribution, LogNormalDist};
use dscs_serverless::simcore::fit::polyfit;
use dscs_serverless::simcore::pareto::{pareto_frontier, ParetoPoint};
use dscs_serverless::simcore::quantity::Bytes;
use dscs_serverless::simcore::rng::DeterministicRng;
use dscs_serverless::simcore::stats::{QuantileSketch, Summary, SKETCH_RELATIVE_ACCURACY};
use dscs_serverless::simcore::time::SimDuration;
use dscs_serverless::storage::object_store::ObjectStore;

/// Number of randomized cases per property (matches the proptest config the
/// suite originally used).
const CASES: u64 = 64;

/// Runs `body` over `CASES` independent generators derived from `seed`. The
/// case index is passed through so failure messages identify the exact case.
fn check(seed: u64, mut body: impl FnMut(u64, &mut DeterministicRng)) {
    for case in 0..CASES {
        let mut rng = DeterministicRng::seeded(seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        body(case, &mut rng);
    }
}

/// Uniform integer in `[lo, hi)`, mirroring proptest's `lo..hi` ranges.
fn int_in(rng: &mut DeterministicRng, lo: u64, hi: u64) -> u64 {
    lo + rng.next_index((hi - lo) as usize) as u64
}

/// The Pareto frontier never contains a dominated point and never loses a
/// non-dominated one.
#[test]
fn pareto_frontier_is_exactly_the_non_dominated_set() {
    check(0xA1, |case, rng| {
        let len = int_in(rng, 1, 60) as usize;
        let candidates: Vec<ParetoPoint<usize>> = (0..len)
            .map(|i| ParetoPoint::new(rng.uniform(0.1, 100.0), rng.uniform(0.1, 100.0), i))
            .collect();
        let frontier = pareto_frontier(candidates.clone());
        for f in &frontier {
            assert!(
                !candidates.iter().any(|c| c.dominates(f)),
                "case {case}: frontier point dominated"
            );
        }
        for c in &candidates {
            let dominated = candidates.iter().any(|other| other.dominates(c));
            let on_frontier = frontier.iter().any(|f| f.tag == c.tag);
            if !dominated && !on_frontier {
                // A non-dominated point may be dropped only if an identical
                // (cost, benefit) pair is already on the frontier.
                let duplicate = frontier
                    .iter()
                    .any(|f| f.cost == c.cost && f.benefit == c.benefit);
                assert!(
                    duplicate,
                    "case {case}: non-dominated point missing from frontier"
                );
            }
        }
    });
}

/// Tiling always fits the double-buffered working set in the scratchpad
/// and always covers the full GEMM.
#[test]
fn tiling_fits_and_covers() {
    check(0xA2, |case, rng| {
        let (m, k, n) = (
            int_in(rng, 1, 5000),
            int_in(rng, 1, 5000),
            int_in(rng, 1, 5000),
        );
        let config = DsaConfig::paper_optimal();
        let tiling = select_tiling(&config, m, k, n);
        assert!(
            tiling.buffer_bytes() <= config.buffer_bytes,
            "case {case}: ({m},{k},{n})"
        );
        assert!(
            tiling.tile_m >= 1 && tiling.tile_k >= 1 && tiling.tile_n >= 1,
            "case {case}"
        );
        assert!(tiling.tile_count(m, k, n) >= 1, "case {case}");
    });
}

/// Convolution lowering to implicit GEMM preserves the FLOP count exactly.
#[test]
fn conv_lowering_preserves_flops() {
    check(0xA3, |case, rng| {
        let op = Operator::Conv2d {
            batch: int_in(rng, 1, 4),
            in_channels: int_in(rng, 1, 128),
            out_channels: int_in(rng, 1, 128),
            in_h: int_in(rng, 4, 64),
            in_w: int_in(rng, 4, 64),
            kernel: int_in(rng, 1, 5),
            stride: int_in(rng, 1, 3),
            dtype: DType::Int8,
        };
        let dims = gemm_dims(&op).expect("conv is GEMM-class");
        assert_eq!(
            2 * dims.m * dims.k * dims.n,
            op.flops(),
            "case {case}: {op:?}"
        );
    });
}

/// The systolic-array cycle count is monotone in each GEMM dimension.
#[test]
fn mpu_cycles_are_monotone() {
    check(0xA4, |case, rng| {
        let (m, k, n) = (
            int_in(rng, 1, 512),
            int_in(rng, 1, 512),
            int_in(rng, 1, 512),
        );
        let mpu = MpuModel::new(&DsaConfig::paper_optimal());
        let base = mpu.gemm_cycles(m, k, n);
        assert!(
            mpu.gemm_cycles(m + 1, k, n) >= base,
            "case {case}: ({m},{k},{n})"
        );
        assert!(
            mpu.gemm_cycles(m, k + 1, n) >= base,
            "case {case}: ({m},{k},{n})"
        );
        assert!(
            mpu.gemm_cycles(m, k, n + 1) >= base,
            "case {case}: ({m},{k},{n})"
        );
    });
}

/// Summary quantiles are monotone in the quantile and bounded by min/max.
#[test]
fn summary_quantiles_are_monotone() {
    check(0xA5, |case, rng| {
        let len = int_in(rng, 1, 200) as usize;
        let values: Vec<f64> = (0..len).map(|_| rng.uniform(0.0, 1e6)).collect();
        let summary = Summary::from_samples(&values);
        let mut previous = summary.min();
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = summary.quantile(q);
            assert!(
                v + 1e-9 >= previous,
                "case {case}: quantiles must not decrease"
            );
            assert!(
                v >= summary.min() - 1e-9 && v <= summary.max() + 1e-9,
                "case {case}: quantile out of bounds"
            );
            previous = v;
        }
    });
}

/// A calibrated lognormal reproduces its own median within sampling error.
#[test]
fn lognormal_calibration_roundtrips() {
    check(0xA6, |case, rng| {
        let median = rng.uniform(1.0, 100.0) / 1e3;
        let tail_factor = rng.uniform(1.1, 4.0);
        let dist = LogNormalDist::from_median_p99(median, median * tail_factor);
        let mut sample_rng = DeterministicRng::seeded(9);
        let samples: Vec<f64> = (0..4_000).map(|_| dist.sample(&mut sample_rng)).collect();
        let s = Summary::from_samples(&samples);
        assert!(
            (s.p50() - median).abs() / median < 0.15,
            "case {case}: p50 {} vs median {median}",
            s.p50()
        );
    });
}

/// Cubic polynomial fits recover exact cubic data.
#[test]
fn polyfit_recovers_cubics() {
    check(0xA7, |case, rng| {
        let a = rng.uniform(-2.0, 2.0);
        let b = rng.uniform(-2.0, 2.0);
        let c = rng.uniform(-0.5, 0.5);
        let d = rng.uniform(-0.05, 0.05);
        let pts: Vec<(f64, f64)> = (0..24)
            .map(|i| {
                let x = i as f64;
                (x, a + b * x + c * x * x + d * x * x * x)
            })
            .collect();
        let poly = polyfit(&pts, 3);
        for &(x, y) in &pts {
            let err = (poly.eval(x) - y).abs();
            assert!(
                err < 1e-5 * (1.0 + y.abs()),
                "case {case}: fit error {err} at {x}"
            );
        }
    });
}

/// Rack-aware placement invariants: for random rack layouts and object
/// streams, every replica rack is in `[0, racks)`, replicas span at most
/// `rack_spread` racks, replicas stay distinct, and acceleratable objects
/// always keep a DSCS replica.
#[test]
fn rack_aware_placement_invariants() {
    check(0xB1, |case, rng| {
        let racks = int_in(rng, 1, 6) as u32;
        let conventional = int_in(rng, 1, 4) as u32;
        let dscs = int_in(rng, 1, 3) as u32;
        let replication = int_in(rng, 1, 5) as usize;
        let rack_spread = int_in(rng, 1, u64::from(racks) + 1) as u32;
        let mut store =
            ObjectStore::with_rack_layout(racks, conventional, dscs, replication, rack_spread);
        let mut place_rng = DeterministicRng::seeded(int_in(rng, 0, 1000));
        for i in 0..int_in(rng, 1, 24) {
            let key = format!("obj-{i}");
            let acceleratable = rng.bernoulli(0.5);
            let meta = store
                .put(
                    &key,
                    Bytes::new(int_in(rng, 1, 8_000_000)),
                    acceleratable,
                    &mut place_rng,
                )
                .expect("rack layout always has DSCS nodes");
            let holding = store.racks_holding(&key).expect("placed");
            assert!(!holding.is_empty(), "case {case}: placed somewhere");
            assert!(
                holding.iter().all(|&r| r < racks),
                "case {case}: rack out of range: {holding:?}"
            );
            assert!(
                holding.len() <= rack_spread as usize,
                "case {case}: replicas span {holding:?} > spread {rack_spread}"
            );
            let mut unique = meta.replicas.clone();
            unique.sort_unstable();
            unique.dedup();
            assert_eq!(unique.len(), meta.replicas.len(), "case {case}: distinct");
            if acceleratable {
                assert!(
                    store.dscs_replica(&key).expect("exists").is_some(),
                    "case {case}: acceleratable objects keep a DSCS replica"
                );
            }
        }
    });
}

/// Object-store placement always respects the replication factor and puts
/// acceleratable objects on a DSCS drive.
#[test]
fn object_store_placement_invariants() {
    check(0xA8, |case, rng| {
        let len = int_in(rng, 1, 40) as usize;
        let objects: Vec<(u64, bool)> = (0..len)
            .map(|_| (int_in(rng, 1, 32_000_000), rng.bernoulli(0.5)))
            .collect();
        let seed = int_in(rng, 0, 1000);
        let mut store = ObjectStore::with_node_counts(5, 3);
        let mut place_rng = DeterministicRng::seeded(seed);
        for (i, &(size, acceleratable)) in objects.iter().enumerate() {
            let key = format!("obj-{i}");
            let meta = store
                .put(&key, Bytes::new(size), acceleratable, &mut place_rng)
                .expect("store has DSCS nodes");
            assert_eq!(meta.replicas.len(), 3, "case {case}");
            let mut unique = meta.replicas.clone();
            unique.sort_unstable();
            unique.dedup();
            assert_eq!(unique.len(), 3, "case {case}: replicas must be distinct");
            if acceleratable {
                assert!(
                    store.dscs_replica(&key).expect("exists").is_some(),
                    "case {case}"
                );
            }
        }
    });
}

/// Time arithmetic: converting seconds to a duration and back is stable to
/// nanosecond rounding.
#[test]
fn duration_roundtrip() {
    check(0xA9, |case, rng| {
        let seconds = rng.uniform(0.0, 10_000.0);
        let d = SimDuration::from_secs_f64(seconds);
        assert!(
            (d.as_secs_f64() - seconds).abs() < 1e-9 * (1.0 + seconds),
            "case {case}: {seconds}"
        );
    });
}

/// DSA configurations in the sweep ranges always validate.
#[test]
fn dsa_configs_validate() {
    check(0xAA, |case, rng| {
        let dim = 1u64 << int_in(rng, 2, 10);
        let buffer_mib = int_in(rng, 1, 32);
        let buffer = (buffer_mib * 1024 * 1024).max(6 * dim * dim);
        for memory in MemoryKind::ALL {
            let config = DsaConfig::square(dim, buffer, memory, TechnologyNode::Nm45);
            assert!(
                config.validate().is_ok(),
                "case {case}: dim {dim} buffer {buffer}"
            );
            assert!(config.peak_ops_per_sec() > 0.0, "case {case}");
        }
    });
}

/// Workload generators are pure functions of their seed and always produce
/// sorted, in-horizon traces with consistent function->benchmark bindings.
#[test]
fn workload_traces_are_deterministic_sorted_and_bounded() {
    use dscs_serverless::cluster::workload::{AzureWorkload, Workload};
    use dscs_serverless::simcore::time::SimTime;

    check(0xAB, |case, rng| {
        let workload = AzureWorkload {
            functions: int_in(rng, 1, 48) as u32,
            popularity_skew: rng.uniform(0.0, 2.0),
            base_rps: rng.uniform(5.0, 400.0),
            horizon: SimDuration::from_secs(int_in(rng, 5, 40)),
            diurnal_amplitude: rng.uniform(0.0, 0.9),
            diurnal_period: SimDuration::from_secs(int_in(rng, 5, 60)),
            burst_factor: rng.uniform(1.0, 4.0),
            burst_fraction: rng.uniform(0.0, 1.0),
            step: SimDuration::from_secs(int_in(rng, 1, 5)),
        };
        assert_eq!(workload.validate(), Ok(()), "case {case}");
        let seed = int_in(rng, 0, 1_000_000);
        let a = workload
            .generate(&mut DeterministicRng::seeded(seed))
            .expect("validated workload generates");
        let b = workload
            .generate(&mut DeterministicRng::seeded(seed))
            .expect("validated workload generates");
        assert_eq!(a, b, "case {case}: same seed, same trace");
        assert!(
            a.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "case {case}: sorted"
        );
        let end = SimTime::ZERO + workload.horizon;
        assert!(a.iter().all(|r| r.arrival < end), "case {case}: bounded");
        assert!(
            a.iter().all(|r| r.function < workload.functions
                && r.benchmark == AzureWorkload::benchmark_of(r.function)),
            "case {case}: function binding"
        );
    });
}

/// Rate-profile validation rejects exactly the malformed inputs: any
/// non-finite or negative rate, any zero-length segment, or no segments.
#[test]
fn rate_profile_validation_catches_malformed_segments() {
    use dscs_serverless::cluster::trace::RateProfile;
    use dscs_serverless::cluster::workload::{Workload, WorkloadError};

    check(0xAC, |case, rng| {
        let len = int_in(rng, 1, 8) as usize;
        let mut segments: Vec<(SimDuration, f64)> = (0..len)
            .map(|_| {
                (
                    SimDuration::from_secs(int_in(rng, 1, 30)),
                    rng.uniform(0.0, 500.0),
                )
            })
            .collect();
        let profile = RateProfile {
            segments: segments.clone(),
        };
        assert_eq!(profile.validate(), Ok(()), "case {case}: well-formed");

        // Corrupt one segment and expect a typed error naming it.
        let victim = rng.next_index(len);
        let bad_rate = *rng.choose(&[f64::NAN, f64::INFINITY, -1.0]);
        segments[victim].1 = bad_rate;
        let profile = RateProfile { segments };
        match profile.validate() {
            Err(WorkloadError::InvalidRate { segment, .. }) => {
                assert_eq!(segment, victim, "case {case}")
            }
            other => panic!("case {case}: expected InvalidRate, got {other:?}"),
        }
    });
}

/// The hybrid-histogram keepalive never evicts a warm container before its
/// current window: for any observation history, an invocation arriving within
/// the reported window of the last finish always finds the container warm.
#[test]
fn hybrid_histogram_never_evicts_before_its_window() {
    use dscs_serverless::cluster::policy::{KeepalivePolicy, KeepaliveState};
    use dscs_serverless::simcore::time::SimTime;

    check(0xAD, |case, rng| {
        let bin = SimDuration::from_secs(int_in(rng, 1, 20));
        let range = bin * int_in(rng, 2, 60);
        let policy = KeepalivePolicy::HybridHistogram {
            range,
            bin,
            head: 0.0,
        };
        let mut state = KeepaliveState::new(policy);
        let function = int_in(rng, 0, 4) as u32;
        let mut now = SimTime::ZERO;
        let mut last_finish = None;
        for _ in 0..int_in(rng, 1, 120) {
            // Random idle gaps, some beyond the histogram range.
            let gap = SimDuration::from_secs_f64(rng.uniform(0.0, 1.5 * range.as_secs_f64()));
            now += gap;
            let window = state.window(function);
            if let Some(finish) = last_finish {
                let idle = now.saturating_since(finish);
                // The invariant under test: inside the window => warm.
                if idle <= window {
                    assert!(
                        state.is_warm(function, now),
                        "case {case}: idle {idle} within window {window} but cold"
                    );
                }
            }
            let service = SimDuration::from_secs_f64(rng.uniform(0.01, 2.0));
            state.record_invocation(function, now, now + service);
            last_finish = Some(now + service);
            now += service;
        }
        // The window never collapses below one bin nor exceeds the range.
        let w = state.window(function);
        assert!(w >= bin.min(range), "case {case}: window {w} < bin {bin}");
        assert!(w <= range, "case {case}: window {w} exceeds range {range}");
    });
}

/// For any prewarm head percentile and any observation history, the prewarm
/// window never exceeds the eviction window, and it stays zero until the
/// pattern is learned.
#[test]
fn prewarm_window_never_exceeds_the_eviction_window() {
    use dscs_serverless::cluster::policy::{KeepalivePolicy, KeepaliveState};
    use dscs_serverless::simcore::time::SimTime;

    check(0xAE, |case, rng| {
        let bin = SimDuration::from_secs(int_in(rng, 1, 20));
        let range = bin * int_in(rng, 2, 60);
        let head = rng.uniform(0.0, 0.5);
        let policy = KeepalivePolicy::HybridHistogram { range, bin, head };
        let mut state = KeepaliveState::new(policy);
        let function = int_in(rng, 0, 4) as u32;
        assert_eq!(
            state.prewarm_window(function),
            SimDuration::ZERO,
            "case {case}: unlearned pattern must not prewarm"
        );
        let mut now = SimTime::ZERO;
        for _ in 0..int_in(rng, 1, 150) {
            let gap = SimDuration::from_secs_f64(rng.uniform(0.0, 1.3 * range.as_secs_f64()));
            now += gap;
            let service = SimDuration::from_secs_f64(rng.uniform(0.01, 2.0));
            state.record_invocation(function, now, now + service);
            now += service;
            let prewarm = state.prewarm_window(function);
            let window = state.window(function);
            assert!(
                prewarm <= window,
                "case {case}: prewarm {prewarm} exceeds eviction window {window}"
            );
        }
    });
}

/// Autoscaled racks never exceed `max_instances` nor drop below
/// `min_instances`, for random elastic policies over random workloads.
#[test]
fn autoscaler_respects_its_instance_bounds() {
    use dscs_serverless::cluster::experiment::Experiment;
    use dscs_serverless::cluster::policy::ScalingPolicy;
    use dscs_serverless::cluster::sim::{ClusterConfig, ClusterSim};
    use dscs_serverless::cluster::trace::RateProfile;
    use dscs_serverless::platforms::PlatformKind;

    // Evaluating the end-to-end model dominates the property's cost; the
    // per-case work is just the (tiny) trace replay, so share one base
    // simulator and reconfigure it per case.
    let base = ClusterSim::new(PlatformKind::DscsDsa, ClusterConfig::default());
    check(0xAF, |case, rng| {
        let min_instances = int_in(rng, 1, 12) as u32;
        let max_instances = min_instances + int_in(rng, 0, 80) as u32;
        let scaling = if rng.bernoulli(0.5) {
            let scale_up_queue = int_in(rng, 1, 64) as usize;
            ScalingPolicy::Reactive {
                scale_up_queue,
                scale_down_queue: int_in(rng, 0, scale_up_queue as u64) as usize,
                step: int_in(rng, 1, 40) as u32,
                interval: SimDuration::from_millis(int_in(rng, 200, 3000)),
            }
        } else {
            ScalingPolicy::Predictive {
                interval: SimDuration::from_millis(int_in(rng, 200, 3000)),
                headroom: rng.uniform(1.0, 2.0),
            }
        };
        let profile = RateProfile {
            segments: vec![
                (
                    SimDuration::from_secs(int_in(rng, 1, 6)),
                    rng.uniform(5.0, 400.0),
                ),
                (
                    SimDuration::from_secs(int_in(rng, 1, 6)),
                    rng.uniform(5.0, 400.0),
                ),
            ],
        };
        let trace = profile.generate(&mut DeterministicRng::seeded(int_in(rng, 0, 1000)));
        if trace.is_empty() {
            return;
        }
        let racks = 1 + int_in(rng, 0, 2) as u32;
        let outcome = Experiment::builder(PlatformKind::DscsDsa)
            .trace(trace.clone())
            .instances(min_instances, max_instances)
            .scaling(scaling)
            .racks(racks)
            .seed(int_in(rng, 0, 1000))
            .build()
            .unwrap_or_else(|err| panic!("case {case}: bounded random config rejected: {err}"))
            .run_on(&base);
        let (report, summaries) = (&outcome.report, &outcome.racks);
        assert!(
            report.peak_instances <= max_instances,
            "case {case}: peak {} exceeds max {max_instances}",
            report.peak_instances
        );
        for rack in summaries {
            assert!(
                rack.low_instances >= min_instances,
                "case {case}: rack {} dropped to {} below min {min_instances}",
                rack.rack,
                rack.low_instances
            );
            assert!(rack.peak_instances <= max_instances, "case {case}");
        }
        assert_eq!(
            report.completed + report.rejected,
            trace.len() as u64,
            "case {case}: every request accounted for"
        );
    });
}

/// Locality-aware balancing invariants, for random traces, rack counts and
/// spill thresholds: every request is accounted for on some in-range rack
/// (the per-rack summaries are the racks the balancer selected), and a
/// request whose object has a replica on an un-saturated rack is never
/// charged a cross-rack fetch — with an unreachable spill threshold no rack
/// ever saturates, so the whole run must complete with zero remote fetches
/// and a locality hit rate of one.
#[test]
fn locality_aware_balancing_never_fetches_when_replica_racks_are_unsaturated() {
    use std::sync::Arc;

    use dscs_serverless::cluster::data::DataLayer;
    use dscs_serverless::cluster::experiment::Experiment;
    use dscs_serverless::cluster::policy::LoadBalancer;
    use dscs_serverless::cluster::sim::{ClusterConfig, ClusterSim};
    use dscs_serverless::cluster::trace::RateProfile;
    use dscs_serverless::platforms::PlatformKind;

    let base = ClusterSim::new(PlatformKind::DscsDsa, ClusterConfig::default());
    check(0xB2, |case, rng| {
        let racks = 1 + int_in(rng, 0, 4) as u32;
        let profile = RateProfile {
            segments: vec![(
                SimDuration::from_secs(int_in(rng, 1, 6)),
                rng.uniform(10.0, 300.0),
            )],
        };
        let trace = Arc::new(profile.generate(&mut DeterministicRng::seeded(int_in(rng, 0, 1000))));
        if trace.is_empty() {
            return;
        }
        let data = Arc::new(DataLayer::for_trace(&trace, racks, int_in(rng, 0, 1000)));
        let run = |spill_threshold, seed| {
            Experiment::builder(PlatformKind::DscsDsa)
                .trace(trace.clone())
                .racks(racks)
                .queue_depth(usize::MAX)
                .balancer(LoadBalancer::LocalityAware { spill_threshold })
                .data_layer(data.clone())
                .seed(seed)
                .build()
                .unwrap_or_else(|err| panic!("case {case}: valid config rejected: {err}"))
                .run_on(&base)
        };
        // An unreachable spill threshold: replica racks never count as
        // saturated, so locality dispatch must always stay local.
        let outcome = run(usize::MAX, int_in(rng, 0, 1000));
        let (report, summaries) = (&outcome.report, &outcome.racks);
        assert_eq!(summaries.len(), racks as usize, "case {case}");
        assert_eq!(
            report.completed,
            trace.len() as u64,
            "case {case}: unbounded queues complete everything"
        );
        assert_eq!(
            report.remote_fetches, 0,
            "case {case}: un-saturated replica racks must never be bypassed"
        );
        assert_eq!(report.cross_rack_bytes, 0, "case {case}");
        assert_eq!(report.fetch_latency_s, 0.0, "case {case}");
        assert_eq!(
            report.fetch_energy_j, 0.0,
            "case {case}: no moved bytes, no joules"
        );
        assert_eq!(
            report.locality_hit_rate(),
            1.0,
            "case {case}: every start is local"
        );
        // And with a random (possibly tiny) spill threshold the run still
        // accounts for every request on in-range racks.
        let spill = int_in(rng, 0, 64) as usize;
        let spilled = run(spill, int_in(rng, 0, 1000));
        assert_eq!(spilled.racks.len(), racks as usize, "case {case}");
        assert_eq!(
            spilled.report.completed + spilled.report.rejected,
            trace.len() as u64,
            "case {case}: every request lands on a real rack"
        );
        assert_eq!(
            spilled.report.locality_hits + spilled.report.remote_fetches,
            spilled.report.completed,
            "case {case}: every started request is classified local or remote"
        );
        assert_eq!(
            spilled.report.fetch_energy_j > 0.0,
            spilled.report.cross_rack_bytes > 0,
            "case {case}: joules flow exactly when bytes move"
        );
    });
}

/// Draws one sample from the case's randomly chosen distribution family:
/// uniform, two-point (adversarial for interpolating estimators), or
/// heavy-tailed (inverse-power of a uniform, stressing the log buckets).
fn sketch_sample(rng: &mut DeterministicRng, family: u64) -> f64 {
    match family {
        0 => rng.uniform(1e-6, 1e6),
        1 => {
            if rng.bernoulli(0.9) {
                1.0
            } else {
                1e4
            }
        }
        _ => {
            // Pareto-like tail: u^(-2) over u in (0, 1], values in [1, 1e8).
            let u = rng.uniform(1e-4, 1.0);
            (u * u).recip()
        }
    }
}

/// Merging sketches of disjoint sample sets is lossless: for any random
/// split of any sample stream, `merge(sketch(a), sketch(b))` agrees with
/// `sketch(a ∪ b)` bit-for-bit on count, min, max and every quantile.
#[test]
fn sketch_merge_equals_the_union_sketch() {
    check(0xB3, |case, rng| {
        let family = int_in(rng, 0, 3);
        let len = int_in(rng, 2, 400) as usize;
        let samples: Vec<f64> = (0..len).map(|_| sketch_sample(rng, family)).collect();
        let split = int_in(rng, 1, len as u64) as usize;
        let union = QuantileSketch::from_samples(&samples);
        let mut merged = QuantileSketch::from_samples(&samples[..split]);
        merged.merge(&QuantileSketch::from_samples(&samples[split..]));
        assert_eq!(union.count(), merged.count(), "case {case}");
        assert_eq!(
            union.min().to_bits(),
            merged.min().to_bits(),
            "case {case}: min is tracked exactly"
        );
        assert_eq!(
            union.max().to_bits(),
            merged.max().to_bits(),
            "case {case}: max is tracked exactly"
        );
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            assert_eq!(
                union.quantile(q).to_bits(),
                merged.quantile(q).to_bits(),
                "case {case}: q={q} must be merge-invariant"
            );
        }
        // The running sum is the one field where only summation *order*
        // differs, so the mean agrees to floating-point round-off.
        let scale = union.mean().abs().max(1.0);
        assert!(
            (union.mean() - merged.mean()).abs() <= 1e-9 * scale,
            "case {case}: mean {} vs {}",
            union.mean(),
            merged.mean()
        );
    });
}

/// The sketch's quantiles stay within the advertised relative accuracy of
/// the exact order statistic (rank `⌈q·n⌉`), across uniform, two-point and
/// heavy-tailed sample sets, and its exact statistics match
/// [`Summary::from_samples`] on the same data.
#[test]
fn sketch_quantiles_track_exact_order_statistics() {
    check(0xB4, |case, rng| {
        let family = int_in(rng, 0, 3);
        let len = int_in(rng, 1, 300) as usize;
        let samples: Vec<f64> = (0..len).map(|_| sketch_sample(rng, family)).collect();
        let sketch = QuantileSketch::from_samples(&samples);
        let summary = Summary::from_samples(&samples);

        // Exact statistics agree with the buffering summary bit-for-bit
        // (count/min/max) or to round-off (mean: different summation order).
        assert_eq!(sketch.count(), summary.count() as u64, "case {case}");
        assert_eq!(
            sketch.min().to_bits(),
            summary.min().to_bits(),
            "case {case}"
        );
        assert_eq!(
            sketch.max().to_bits(),
            summary.max().to_bits(),
            "case {case}"
        );
        assert!(
            (sketch.mean() - summary.mean()).abs() <= 1e-9 * summary.mean().abs().max(1.0),
            "case {case}: mean {} vs {}",
            sketch.mean(),
            summary.mean()
        );

        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let rank = ((q * len as f64).ceil() as usize).max(1);
            let exact = sorted[rank - 1];
            let approx = sketch.quantile(q);
            // The bucket representative is within α of anything in its
            // bucket; allow a hair of floating-point slack on top.
            assert!(
                (approx - exact).abs() <= exact * SKETCH_RELATIVE_ACCURACY * 1.0001 + 1e-12,
                "case {case}: q={q} exact={exact} sketch={approx}"
            );
        }
    });
}

/// Sketch quantiles are monotone in `q` and bounded by the exact min/max —
/// the same invariant [`summary_quantiles_are_monotone`] pins for the
/// buffering summary.
#[test]
fn sketch_quantiles_are_monotone_and_bounded() {
    check(0xB5, |case, rng| {
        let family = int_in(rng, 0, 3);
        let len = int_in(rng, 1, 300) as usize;
        let samples: Vec<f64> = (0..len).map(|_| sketch_sample(rng, family)).collect();
        let sketch = QuantileSketch::from_samples(&samples);
        let mut previous = sketch.min();
        for i in 0..=40 {
            let q = i as f64 / 40.0;
            let v = sketch.quantile(q);
            assert!(v + 1e-12 >= previous, "case {case}: q={q} decreased");
            assert!(
                v >= sketch.min() && v <= sketch.max(),
                "case {case}: q={q} out of [min, max]"
            );
            previous = v;
        }
    });
}

/// The sketch rejects the same malformed inputs as [`Summary`]: an empty
/// sample set and non-finite values, plus negatives (it buckets by
/// logarithm).
#[test]
#[should_panic(expected = "cannot summarise an empty sample set")]
fn sketch_rejects_an_empty_sample_set() {
    let _ = QuantileSketch::from_samples(&[]);
}

#[test]
#[should_panic(expected = "sketch samples must be non-negative and finite")]
fn sketch_rejects_nan_samples() {
    let mut sketch = QuantileSketch::new();
    sketch.record(f64::NAN);
}

#[test]
#[should_panic(expected = "sketch samples must be non-negative and finite")]
fn sketch_rejects_negative_samples() {
    let mut sketch = QuantileSketch::new();
    sketch.record(-1.0);
}

#[test]
#[should_panic(expected = "cannot summarise an empty sketch")]
fn sketch_rejects_quantiles_of_nothing() {
    let _ = QuantileSketch::new().p99();
}

/// With `ScalingPolicy::Fixed` the simulator is bit-identical to an elastic
/// pool pinned at the cap (`min == max`): the scale-tick machinery must not
/// perturb the RNG stream, the event ordering, or any reported series.
#[test]
fn fixed_scaling_is_bit_identical_to_a_pinned_pool() {
    use std::sync::Arc;

    use dscs_serverless::cluster::experiment::Experiment;
    use dscs_serverless::cluster::policy::ScalingPolicy;
    use dscs_serverless::cluster::sim::{ClusterConfig, ClusterSim};
    use dscs_serverless::cluster::trace::RateProfile;
    use dscs_serverless::platforms::PlatformKind;

    let fixed_sim = ClusterSim::new(PlatformKind::DscsDsa, ClusterConfig::default());
    check(0xB0, |case, rng| {
        let profile = RateProfile {
            segments: vec![(
                SimDuration::from_secs(int_in(rng, 2, 8)),
                rng.uniform(20.0, 600.0),
            )],
        };
        let trace = Arc::new(profile.generate(&mut DeterministicRng::seeded(int_in(rng, 0, 1000))));
        if trace.is_empty() {
            return;
        }
        let scale_up_queue = int_in(rng, 1, 100) as usize;
        let pinned_scaling = ScalingPolicy::Reactive {
            scale_up_queue,
            scale_down_queue: int_in(rng, 0, scale_up_queue as u64) as usize,
            step: int_in(rng, 1, 50) as u32,
            interval: SimDuration::from_millis(int_in(rng, 100, 2000)),
        };
        let seed = int_in(rng, 0, 1000);
        let racks = 1 + int_in(rng, 0, 2) as u32;
        let run = |scaling, min| {
            Experiment::builder(PlatformKind::DscsDsa)
                .trace(trace.clone())
                .scaling(scaling)
                .instances(min, 200)
                .racks(racks)
                .seed(seed)
                .build()
                .unwrap_or_else(|err| panic!("case {case}: valid config rejected: {err}"))
                .run_on(&fixed_sim)
        };
        let a = run(ScalingPolicy::Fixed, 8);
        let b = run(pinned_scaling, 200);
        // The pinned-elastic run processes extra scale-tick engine events
        // that never change a decision; `events` counts them, so it is the
        // one deterministic field allowed to differ. Everything modelled
        // must still be bit-identical.
        let mut pinned_report = b.report.clone();
        assert!(
            pinned_report.events >= a.report.events,
            "case {case}: scale ticks only add events"
        );
        pinned_report.events = a.report.events;
        assert_eq!(
            a.report, pinned_report,
            "case {case}: reports must be bit-identical"
        );
        assert_eq!(a.racks, b.racks, "case {case}");
    });
}

/// Snapshot-restore latency is monotone in snapshot size for any valid
/// configuration: more pages always cost more to stream back and fault in,
/// the warmup tail never exceeds the restore it is part of, and a zero-size
/// snapshot is free.
#[test]
fn snapshot_restore_latency_is_monotone_in_snapshot_size() {
    use dscs_serverless::simcore::quantity::Bandwidth;
    use dscs_serverless::storage::snapshot::{SnapshotConfig, SnapshotStore};

    check(0xB7, |case, rng| {
        let store = SnapshotStore::new(SnapshotConfig {
            restore_bandwidth: Bandwidth::from_mbps(rng.uniform(100.0, 5000.0)),
            restore_setup: SimDuration::from_millis(int_in(rng, 0, 200)),
            warmup_fault_fraction: rng.uniform(0.0, 1.0),
            fault_bandwidth: Bandwidth::from_mbps(rng.uniform(10.0, 1000.0)),
        });
        let mut sizes: Vec<u64> = (0..12).map(|_| int_in(rng, 0, 4_000_000_000)).collect();
        sizes.sort_unstable();
        let mut previous = SimDuration::ZERO;
        let mut previous_size = 0u64;
        for &size in &sizes {
            let latency = store.restore_latency(Bytes::new(size));
            assert!(
                latency >= previous,
                "case {case}: {size} B restores faster than {previous_size} B"
            );
            assert!(
                store.warmup_tail(Bytes::new(size)) <= latency,
                "case {case}: tail exceeds the restore it is part of"
            );
            previous = latency;
            previous_size = size;
        }
        assert_eq!(
            store.restore_latency(Bytes::ZERO),
            SimDuration::ZERO,
            "case {case}: zero-size snapshots are free"
        );
    });
}

/// The offline-optimal cold-start bound is a true floor: for random traces,
/// rack counts, seeds and every scheduler / keepalive / scaling / balancer /
/// cold-start-path / IPC-transport combination, the measured aggregate
/// cold-start seconds never dip below the bound priced under the cell's own
/// modality, and the derived regret is therefore non-negative.
#[test]
fn offline_optimal_bound_floors_every_policys_cold_start_seconds() {
    use dscs_serverless::cluster::coldpath::{ColdStartPath, IpcTransport};
    use dscs_serverless::cluster::experiment::Experiment;
    use dscs_serverless::cluster::optimal::{optimal_coldstart_seconds, regret_pct};
    use dscs_serverless::cluster::policy::{
        KeepalivePolicy, LoadBalancer, ScalingPolicy, SchedulerPolicy,
    };
    use dscs_serverless::cluster::sim::{ClusterConfig, ClusterSim};
    use dscs_serverless::cluster::trace::RateProfile;
    use dscs_serverless::platforms::PlatformKind;

    // Model evaluation dominates; share one base simulator per platform and
    // replay the (tiny) random traces against it.
    let bases: Vec<ClusterSim> = [PlatformKind::BaselineCpu, PlatformKind::DscsDsa]
        .into_iter()
        .map(|p| ClusterSim::new(p, ClusterConfig::default()))
        .collect();
    check(0xB0, |case, rng| {
        let profile = RateProfile {
            segments: vec![
                (
                    SimDuration::from_secs(int_in(rng, 1, 8)),
                    rng.uniform(5.0, 300.0),
                ),
                (
                    SimDuration::from_secs(int_in(rng, 1, 8)),
                    rng.uniform(5.0, 300.0),
                ),
            ],
        };
        let trace = profile.generate(&mut DeterministicRng::seeded(int_in(rng, 0, 1000)));
        if trace.is_empty() {
            return;
        }
        let base = &bases[int_in(rng, 0, 2) as usize];
        let scheduler = SchedulerPolicy::ALL[int_in(rng, 0, 3) as usize];
        let keepalive = KeepalivePolicy::all_default()[int_in(rng, 0, 4) as usize];
        let scaling = ScalingPolicy::all_default()[int_in(rng, 0, 3) as usize];
        let balancer = LoadBalancer::ALL[int_in(rng, 0, 3) as usize];
        let cold_path = ColdStartPath::ALL[int_in(rng, 0, 3) as usize];
        let ipc = IpcTransport::ALL[int_in(rng, 0, 3) as usize];
        let outcome = Experiment::builder(base.platform())
            .trace(trace.clone())
            .racks(1 + int_in(rng, 0, 3) as u32)
            .scheduler(scheduler)
            .keepalive(keepalive)
            .scaling(scaling)
            .balancer(balancer)
            .cold_path(cold_path)
            .ipc(ipc)
            .seed(int_in(rng, 0, 1000))
            .build()
            .unwrap_or_else(|err| panic!("case {case}: valid config rejected: {err}"))
            .run_on(base);
        // Price the bound under the cell's own cold-start modality (the IPC
        // transport charges the request path, not cold starts, so it is not
        // part of the bound's pricing).
        let priced = base.reconfigured(ClusterConfig {
            cold_path,
            ..ClusterConfig::default()
        });
        let bound = optimal_coldstart_seconds(&trace, &priced);
        assert_eq!(
            outcome.optimal_coldstart_s,
            Some(bound),
            "case {case}: the outcome carries exactly the recomputed bound"
        );
        // The floor is exact in real arithmetic; allow one part in 1e9 for
        // summation-order noise (racks accumulate in event order, the bound
        // in trace order).
        assert!(
            outcome.report.coldstart_s >= bound * (1.0 - 1e-9),
            "case {case} ({} / {} / {} / {} / {} / {}): measured {} below the bound {bound}",
            scheduler.name(),
            keepalive.name(),
            scaling.name(),
            balancer.name(),
            cold_path.name(),
            ipc.name(),
            outcome.report.coldstart_s,
        );
        assert!(
            regret_pct(outcome.report.coldstart_s, bound) >= 0.0,
            "case {case}"
        );
    });
}
