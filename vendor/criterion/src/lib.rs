//! Offline minimal stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no registry access, so the real `criterion`
//! cannot be fetched. This stub implements the small API surface the
//! workspace benches use — `Criterion::bench_function`,
//! `Criterion::benchmark_group` (with `sample_size`/`bench_function`/
//! `finish`), `Bencher::iter`, and the `criterion_group!`/`criterion_main!`
//! macros — and reports mean wall-clock time per iteration. It honors
//! `--bench` (ignored filter args) so `cargo bench` invocations pass through.
//! Replace with the real crates.io `criterion` once network access exists.

use std::hint;
use std::time::Instant;

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level benchmark driver; collects and times benchmark functions.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` passes `--bench` and an optional name filter; keep the
        // filter so `cargo bench <name>` narrows what runs, ignore flags.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            sample_size: 10,
            filter,
        }
    }
}

impl Criterion {
    /// Runs `f` as a named benchmark and prints its mean iteration time.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, self.filter.as_deref(), f);
        self
    }

    /// Starts a named group of benchmarks sharing configuration.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            criterion: self,
        }
    }
}

/// A group of related benchmarks with shared sample-size configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs `f` as a named benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, self.criterion.filter.as_deref(), f);
        self
    }

    /// Finishes the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; `iter` times the provided routine.
pub struct Bencher {
    samples: usize,
    total_nanos: u128,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, running it `sample` times.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.samples {
            hint::black_box(routine());
        }
        self.total_nanos += start.elapsed().as_nanos();
        self.iters += self.samples as u64;
    }
}

fn run_one<F>(id: &str, samples: usize, filter: Option<&str>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if let Some(filter) = filter {
        if !id.contains(filter) {
            return;
        }
    }
    let mut bencher = Bencher {
        samples,
        total_nanos: 0,
        iters: 0,
    };
    f(&mut bencher);
    if bencher.iters > 0 {
        let mean = bencher.total_nanos as f64 / bencher.iters as f64;
        println!(
            "bench {id}: {:.3} ms/iter ({} iters)",
            mean / 1e6,
            bencher.iters
        );
    }
}

/// Bundles benchmark functions into a single runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` that runs each registered benchmark group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
