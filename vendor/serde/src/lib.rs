//! Offline API-surface stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names in both the trait and macro
//! namespaces so `use serde::{Deserialize, Serialize};` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged. The derives expand
//! to nothing (see `serde_derive`); replace this vendored stub with the real
//! crates.io `serde` once network access is available.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
