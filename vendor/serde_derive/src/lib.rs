//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no registry access, so the real `serde_derive`
//! cannot be fetched. Workspace types only *derive* `Serialize`/`Deserialize`
//! (nothing serializes at runtime yet), so these derives expand to nothing
//! while still accepting `#[serde(...)]` helper attributes.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
